//! Overlapped compress→write and read→decompress streaming pipelines.
//!
//! The paper's subject is compressed I/O — compress a dump, then write it
//! to NFS — and it accounts energy *per phase* (§V–VI). The sequential
//! drivers model exactly that, but they leave the write path idle while
//! workers compress. This module adds the overlap: chunked compression
//! (through the [`lcpio_codec`] registry) feeds a **bounded queue** ahead
//! of a writer stage, so compression of chunk *k+1* proceeds while chunk
//! *k* is on the wire, with backpressure once the writer falls
//! `queue_depth` chunks behind.
//!
//! Three layers, separately testable:
//!
//! * **Stream format** — a self-describing `LCS1` container: a header with
//!   dims + chunk size, then one frame per chunk (compressed through the
//!   registry, or raw after codec-failure fallback). [`run_sequential`]
//!   and [`run_streaming`] produce **byte-identical** streams at every
//!   queue depth / writer count; [`decode_stream`] reads either.
//! * **Execution** — [`run_streaming`] really runs the stages on threads:
//!   compression workers pull chunk indices, a bounded reorder queue
//!   applies backpressure, writer workers retry failed writes with bounded
//!   backoff and commit to the [`ChunkSink`] strictly in order.
//! * **Energy/time model** — [`simulate_pipeline`] maps per-chunk work
//!   profiles onto a machine at tuned frequencies and computes the
//!   overlapped makespan ([`overlap_makespan`]). Per-phase joules are
//!   summed per chunk, so the overlapped totals equal the sequential
//!   totals exactly — overlap shortens wall time, it must never
//!   double-count (or lose) energy.
//!
//! The **restart path** is the mirror image: [`run_restart`] streams LCS1
//! frames off a [`ChunkSource`] with a bounded prefetch queue, decodes
//! chunk *k* on a worker pool (through the registry, which reuses decode
//! scratch) while chunk *k+1* is still being read, and reassembles the
//! output through a reorder stage so it is element-identical to the
//! sequential [`run_restart_sequential`] at every queue depth and worker
//! count. [`scaled_restart`] prices it under the same energy-conservation
//! invariant, feeding `readback`'s per-phase report.
//!
//! ```
//! use lcpio_core::pipeline::{run_sequential, run_streaming, PipelineConfig, VecSink};
//!
//! let data: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.01).sin()).collect();
//! let cfg = PipelineConfig { chunk_elements: 512, queue_depth: 2, ..PipelineConfig::default() };
//! let mut seq = VecSink::default();
//! let mut par = VecSink::default();
//! run_sequential(&data, &cfg, &mut seq).unwrap();
//! let outcome = run_streaming(&data, &cfg, &mut par).unwrap();
//! assert_eq!(seq.bytes, par.bytes); // overlap never changes the stream
//! assert_eq!(outcome.chunks, 8);
//! ```

use crate::error::{CoreError, PipelineError};
use crate::policy::{build_policy, codec_id_of, PolicyKind};
use crate::records::Compressor;
use crate::workmap::CostModel;
use lcpio_codec::policy::{ChunkPlan, CodecId};
use lcpio_codec::{BoundSpec, CodecStats};
use lcpio_powersim::{simulate, Chip, Machine, WorkProfile};
use std::collections::BTreeMap;
use std::io;
use std::io::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Magic prefix of the streaming container.
pub const STREAM_MAGIC: [u8; 4] = *b"LCS1";

/// Frame tag: payload is a registry-decodable compressed stream.
const FRAME_COMPRESSED: u8 = 0;
/// Frame tag: payload is raw little-endian `f32`s (codec-failure fallback).
const FRAME_RAW: u8 = 1;

/// Which chunk/attempt pairs fail, for fault-injection tests.
///
/// The plan is *deterministic* — a function of `(chunk, attempt)` only —
/// so the sequential and streaming paths degrade identically and stay
/// byte-comparable even under injected faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailurePlan {
    /// `(chunk, attempt)` pairs (0-based) at which the sink write fails.
    pub write_failures: Vec<(usize, u32)>,
    /// `(chunk, attempt)` pairs at which chunk compression "fails",
    /// exercising the raw-frame fallback path.
    pub compress_failures: Vec<(usize, u32)>,
    /// `(chunk, attempt)` pairs at which a restart frame read fails.
    pub read_failures: Vec<(usize, u32)>,
    /// `(chunk, attempt)` pairs at which a restart decode worker "dies"
    /// mid-chunk; the chunk is retried (the payload is intact).
    pub decode_failures: Vec<(usize, u32)>,
}

impl FailurePlan {
    fn write_fails(&self, chunk: usize, attempt: u32) -> bool {
        self.write_failures.contains(&(chunk, attempt))
    }

    fn compress_fails(&self, chunk: usize, attempt: u32) -> bool {
        self.compress_failures.contains(&(chunk, attempt))
    }

    fn read_fails(&self, chunk: usize, attempt: u32) -> bool {
        self.read_failures.contains(&(chunk, attempt))
    }

    fn decode_fails(&self, chunk: usize, attempt: u32) -> bool {
        self.decode_failures.contains(&(chunk, attempt))
    }
}

/// Configuration of the streaming pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineConfig {
    /// Compressor backend (resolved through the codec registry).
    pub compressor: Compressor,
    /// Error bound for every chunk.
    pub bound: BoundSpec,
    /// Elements per chunk (the last chunk may be shorter).
    pub chunk_elements: usize,
    /// Bounded-queue depth between the stages: at most this many
    /// compressed-but-unwritten chunks exist at once (≥ 1).
    pub queue_depth: usize,
    /// Writer workers draining the queue (≥ 1). Commits to the sink are
    /// serialized in chunk order regardless, so the stream is identical.
    pub writers: usize,
    /// Compression workers (0 ⇒ all available cores).
    pub compress_threads: usize,
    /// Write attempts per chunk before the pipeline fails (≥ 1).
    pub max_write_attempts: u32,
    /// Backoff between write retries, in milliseconds, scaled linearly by
    /// the attempt number (tests use 0).
    pub retry_backoff_ms: u64,
    /// Compression attempts per chunk before falling back to a raw frame.
    pub max_compress_attempts: u32,
    /// Emit the stream as an `LCW1` wire envelope (container id `LCS1`,
    /// one frame per chunk with the kind byte leading the payload) instead
    /// of the legacy `LCS1` container. Both forms carry identical chunk
    /// payloads and decode identically; the wire form additionally
    /// supports incremental push decoding ([`run_restart_streamed`]).
    pub wire_format: bool,
    /// Per-chunk planning policy. [`PolicyKind::Fixed`] reproduces the
    /// single-codec stream byte-for-byte; the heuristic and adaptive
    /// policies may route each chunk to a different codec (and simulated
    /// frequency), producing a mixed-codec container. Wire-form mixed
    /// containers additionally carry a per-frame codec-tag TLV.
    pub policy: PolicyKind,
    /// Simulated chip whose DVFS ladder the policy plans against.
    pub chip: Chip,
    /// Injected failures (empty in production).
    pub failure_plan: FailurePlan,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            compressor: Compressor::Sz,
            bound: BoundSpec::Absolute(1e-3),
            chunk_elements: 1 << 18,
            queue_depth: 4,
            writers: 1,
            compress_threads: 0,
            max_write_attempts: 3,
            retry_backoff_ms: 1,
            max_compress_attempts: 2,
            wire_format: false,
            policy: PolicyKind::Fixed,
            chip: Chip::Broadwell,
            failure_plan: FailurePlan::default(),
        }
    }
}

impl PipelineConfig {
    /// Reject degenerate knob settings with a typed error.
    pub fn validate(&self) -> Result<(), CoreError> {
        let bad = |msg: &str| {
            Err(CoreError::Pipeline(PipelineError {
                chunk: 0,
                attempts: 0,
                message: msg.to_string(),
            }))
        };
        if self.chunk_elements == 0 {
            return bad("chunk_elements must be at least 1");
        }
        if self.queue_depth == 0 {
            return bad("queue_depth must be at least 1");
        }
        if self.writers == 0 {
            return bad("writers must be at least 1");
        }
        if self.max_write_attempts == 0 {
            return bad("max_write_attempts must be at least 1");
        }
        if self.max_compress_attempts == 0 {
            return bad("max_compress_attempts must be at least 1");
        }
        Ok(())
    }
}

/// Where the writer stage commits finished chunks.
///
/// `write_chunk` receives frames strictly in `seq` order (0, 1, 2, …; the
/// stream header is seq 0's predecessor and arrives via `write_header`).
/// An implementation may fail transiently — the writer retries up to
/// [`PipelineConfig::max_write_attempts`] times.
pub trait ChunkSink: Send {
    /// Write the stream header (once, before any chunk).
    fn write_header(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Write one framed chunk. `seq` is the chunk index.
    fn write_chunk(&mut self, seq: usize, bytes: &[u8]) -> io::Result<()>;
}

/// An in-memory sink: the assembled container stream.
#[derive(Debug, Default)]
pub struct VecSink {
    /// The bytes written so far (header + frames in order).
    pub bytes: Vec<u8>,
}

impl ChunkSink for VecSink {
    fn write_header(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.bytes.extend_from_slice(bytes);
        Ok(())
    }

    fn write_chunk(&mut self, _seq: usize, bytes: &[u8]) -> io::Result<()> {
        self.bytes.extend_from_slice(bytes);
        Ok(())
    }
}

/// A sink that writes the container to disk **atomically**: all frames go
/// to `<path>.part`, which is renamed onto the final path only when
/// [`FileSink::commit`] is called after a successful run. Dropping an
/// uncommitted sink removes the partial file, so a failed pipeline never
/// leaves a partial container at the destination.
pub struct FileSink {
    file: Option<std::io::BufWriter<std::fs::File>>,
    tmp: std::path::PathBuf,
    dest: std::path::PathBuf,
    committed: bool,
}

impl FileSink {
    /// Open `<path>.part` for writing.
    pub fn create(path: &std::path::Path) -> io::Result<FileSink> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".part");
        let tmp = std::path::PathBuf::from(tmp);
        let file = std::fs::File::create(&tmp)?;
        Ok(FileSink {
            file: Some(std::io::BufWriter::new(file)),
            tmp,
            dest: path.to_path_buf(),
            committed: false,
        })
    }

    /// Flush and atomically rename the finished container into place.
    pub fn commit(mut self) -> io::Result<()> {
        if let Some(mut f) = self.file.take() {
            f.flush()?;
        }
        std::fs::rename(&self.tmp, &self.dest)?;
        self.committed = true;
        Ok(())
    }
}

impl Drop for FileSink {
    fn drop(&mut self) {
        if !self.committed {
            drop(self.file.take());
            let _ = std::fs::remove_file(&self.tmp);
        }
    }
}

impl ChunkSink for FileSink {
    fn write_header(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file.as_mut().expect("sink not committed").write_all(bytes)
    }

    fn write_chunk(&mut self, _seq: usize, bytes: &[u8]) -> io::Result<()> {
        self.file.as_mut().expect("sink not committed").write_all(bytes)
    }
}

/// Outcome of one pipeline (or sequential-reference) execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StreamOutcome {
    /// Chunks written.
    pub chunks: usize,
    /// Uncompressed input bytes.
    pub bytes_in: u64,
    /// Container bytes written (header + all frames).
    pub bytes_out: u64,
    /// Chunks that fell back to raw frames after codec failure.
    pub raw_fallbacks: usize,
    /// Total write retries that eventually succeeded.
    pub write_retries: u64,
    /// Summed codec statistics over the compressed chunks.
    pub stats: CodecStats,
    /// Wall-clock seconds spent inside chunk compression (summed across
    /// workers — busy time, not elapsed time).
    pub compress_busy_s: f64,
    /// Wall-clock seconds spent inside sink writes (busy time).
    pub write_busy_s: f64,
    /// Wall-clock seconds spent computing per-chunk plans before the
    /// stream was opened (0 for the fixed policy, which needs no
    /// sampling).
    pub plan_s: f64,
    /// Chunks emitted per codec, indexed by wire codec id
    /// ([`CodecId::Raw`], [`CodecId::Sz`], [`CodecId::Zfp`]). Raw counts
    /// both planned-raw chunks and codec-failure fallbacks.
    pub codec_chunks: [usize; 3],
    /// Elapsed wall-clock seconds for the whole run.
    pub wall_s: f64,
}

impl StreamOutcome {
    /// Compression ratio of the whole container.
    pub fn ratio(&self) -> f64 {
        if self.bytes_out == 0 { 0.0 } else { self.bytes_in as f64 / self.bytes_out as f64 }
    }
}

/// Split `data` into the pipeline's chunks.
fn chunk_ranges(len: usize, chunk_elements: usize) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::with_capacity(len / chunk_elements + 1);
    let mut start = 0;
    while start < len {
        let end = (start + chunk_elements).min(len);
        out.push(start..end);
        start = end;
    }
    out
}

/// Serialize the LCS1 geometry (element count, chunk size) as the LCW1
/// `PARAMS` field — the wire-form replacement for the legacy 20-byte
/// header's two `u64`s.
fn lcs_params(elements: u64, chunk_elements: u64) -> [u8; 16] {
    let mut p = [0u8; 16];
    p[..8].copy_from_slice(&elements.to_le_bytes());
    p[8..].copy_from_slice(&chunk_elements.to_le_bytes());
    p
}

/// Render the stream header: the legacy 20-byte `LCS1` header (magic,
/// element count, chunk size), or the `LCW1` envelope header carrying the
/// same geometry in its `PARAMS` field when `wire` is set. A wire header
/// additionally carries the per-frame `CODEC_TAGS` TLV when `codec_tags`
/// is given (mixed-codec containers only — the legacy header has no TLV
/// space, and fixed-policy wire streams omit the field so their bytes are
/// unchanged from earlier writers).
fn header_bytes(
    wire: bool,
    elements: u64,
    chunk_elements: u64,
    chunks: usize,
    codec_tags: Option<&[u8]>,
) -> Vec<u8> {
    if wire {
        let mut b = lcpio_wire::envelope::EnvelopeBuilder::new(STREAM_MAGIC)
            .params(&lcs_params(elements, chunk_elements));
        if let Some(tags) = codec_tags {
            b = b.codec_tags(tags);
        }
        return b.header_bytes(chunks);
    }
    let mut h = Vec::with_capacity(20);
    h.extend_from_slice(&STREAM_MAGIC);
    h.extend_from_slice(&elements.to_le_bytes());
    h.extend_from_slice(&chunk_elements.to_le_bytes());
    h
}

/// Compute every chunk's plan up front, before the header is written.
///
/// Plans are a pure function of `(chunk bytes, seq)` — never of thread
/// interleaving — so the sequential and streaming paths produce identical
/// plans, and with them identical streams, at every worker count. The
/// fixed policy short-circuits without sampling: every chunk keeps the
/// configured compressor/bound at the chip's nominal frequency.
fn plan_chunks(
    cfg: &PipelineConfig,
    data: &[f32],
    ranges: &[std::ops::Range<usize>],
) -> (Vec<ChunkPlan>, f64) {
    let t0 = std::time::Instant::now();
    let plans = match cfg.policy {
        PolicyKind::Fixed => {
            let plan = ChunkPlan {
                codec: codec_id_of(cfg.compressor),
                bound: cfg.bound,
                f_ghz: Machine::for_chip(cfg.chip).cpu.f_max_ghz,
            };
            vec![plan; ranges.len()]
        }
        _ => {
            let policy =
                build_policy(cfg.policy, cfg.compressor, cfg.bound, cfg.chip, CostModel::default());
            ranges.iter().enumerate().map(|(seq, r)| policy.plan(&data[r.clone()], seq)).collect()
        }
    };
    (plans, t0.elapsed().as_secs_f64())
}

/// The `CODEC_TAGS` TLV for a wire header, or `None` when the container
/// must stay byte-identical to the single-codec form (legacy layout, or
/// the fixed policy on either layout).
fn codec_tag_bytes(cfg: &PipelineConfig, plans: &[ChunkPlan]) -> Option<Vec<u8>> {
    (cfg.wire_format && cfg.policy != PolicyKind::Fixed)
        .then(|| plans.iter().map(|p| p.codec.as_u8()).collect())
}

/// Frame one chunk payload for the container: legacy `[kind][u32 len]`
/// framing, or an LCW1 frame (varint length, kind byte leading the
/// payload) when `wire` is set.
fn frame_bytes(wire: bool, kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut out;
    if wire {
        out = lcpio_wire::envelope::frame_prefix(payload.len() + 1);
        out.reserve(payload.len() + 1);
        out.push(kind);
    } else {
        out = Vec::with_capacity(5 + payload.len());
        out.push(kind);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    }
    out.extend_from_slice(payload);
    out
}

/// A compressed (or raw-fallback) chunk, framed for the container.
struct Frame {
    bytes: Vec<u8>,
    stats: Option<CodecStats>,
    raw: bool,
    /// Codec the frame was actually emitted with ([`CodecId::Raw`] for
    /// planned-raw chunks and codec-failure fallbacks alike).
    codec: CodecId,
    compress_s: f64,
}

/// Compress one chunk into its frame under the chunk's plan, honouring
/// the failure plan and the raw fallback. Deterministic: identical for
/// sequential and streaming.
fn compress_frame(cfg: &PipelineConfig, seq: usize, chunk: &[f32], plan: &ChunkPlan) -> Frame {
    let t0 = std::time::Instant::now();
    // A plan for `CodecId::Raw` resolves to no registry codec and drops
    // straight into the raw-frame path below.
    let codec = lcpio_codec::registry().by_name(plan.codec.name());
    let mut encoded = None;
    if let Some(codec) = codec {
        for attempt in 0..cfg.max_compress_attempts {
            if cfg.failure_plan.compress_fails(seq, attempt) {
                continue;
            }
            match codec.compress(chunk, &[chunk.len()], plan.bound) {
                Ok(e) => {
                    encoded = Some(e);
                    break;
                }
                Err(_) => continue,
            }
        }
    }
    let (frame, stats, raw, emitted) = match encoded {
        Some(e) => {
            let frame = frame_bytes(cfg.wire_format, FRAME_COMPRESSED, &e.bytes);
            (frame, Some(e.stats), false, plan.codec)
        }
        None => {
            // Graceful degradation: repeated codec failure must not sink
            // the dump — store the chunk uncompressed (bound trivially
            // respected: the data is exact).
            let mut payload = Vec::with_capacity(chunk.len() * 4);
            for &v in chunk {
                payload.extend_from_slice(&v.to_le_bytes());
            }
            (frame_bytes(cfg.wire_format, FRAME_RAW, &payload), None, true, CodecId::Raw)
        }
    };
    Frame { bytes: frame, stats, raw, codec: emitted, compress_s: t0.elapsed().as_secs_f64() }
}

/// Write one frame to the sink with bounded retry/backoff.
///
/// Returns the number of retries that preceded the successful attempt, or
/// the typed error after `max_write_attempts` failures.
fn write_with_retry(
    cfg: &PipelineConfig,
    sink: &mut dyn ChunkSink,
    seq: usize,
    bytes: &[u8],
) -> Result<u64, CoreError> {
    let mut last = String::new();
    for attempt in 0..cfg.max_write_attempts {
        if attempt > 0 && cfg.retry_backoff_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(
                cfg.retry_backoff_ms * attempt as u64,
            ));
        }
        let injected = cfg.failure_plan.write_fails(seq, attempt);
        let result = if injected {
            Err(io::Error::other("injected write failure"))
        } else {
            sink.write_chunk(seq, bytes)
        };
        match result {
            Ok(()) => {
                lcpio_trace::counter_add("pipeline.write_retries", attempt as u64);
                return Ok(attempt as u64);
            }
            Err(e) => last = e.to_string(),
        }
    }
    Err(CoreError::Pipeline(PipelineError {
        chunk: seq,
        attempts: cfg.max_write_attempts,
        message: format!("write failed after {} attempts: {last}", cfg.max_write_attempts),
    }))
}

/// Run the *sequential* reference path: compress chunk, write chunk,
/// repeat. Same frames, same sink protocol, no overlap — the baseline the
/// overlapped pipeline must match byte-for-byte and beat on wall time.
pub fn run_sequential(
    data: &[f32],
    cfg: &PipelineConfig,
    sink: &mut dyn ChunkSink,
) -> Result<StreamOutcome, CoreError> {
    cfg.validate()?;
    let _span = lcpio_trace::span("pipeline.sequential");
    let t0 = std::time::Instant::now();
    let ranges = chunk_ranges(data.len(), cfg.chunk_elements);
    let (plans, plan_s) = plan_chunks(cfg, data, &ranges);
    let tags = codec_tag_bytes(cfg, &plans);
    let header = header_bytes(
        cfg.wire_format,
        data.len() as u64,
        cfg.chunk_elements as u64,
        ranges.len(),
        tags.as_deref(),
    );
    sink.write_header(&header).map_err(|e| header_error(&e))?;
    let mut out = StreamOutcome {
        chunks: ranges.len(),
        bytes_in: data.len() as u64 * 4,
        bytes_out: header.len() as u64,
        plan_s,
        ..StreamOutcome::default()
    };
    for (seq, r) in ranges.iter().enumerate() {
        let frame = compress_frame(cfg, seq, &data[r.clone()], &plans[seq]);
        out.compress_busy_s += frame.compress_s;
        if let Some(s) = frame.stats {
            accumulate(&mut out.stats, &s);
        }
        out.codec_chunks[frame.codec.as_u8() as usize] += 1;
        if frame.raw {
            out.raw_fallbacks += 1;
        }
        let tw = std::time::Instant::now();
        out.write_retries += write_with_retry(cfg, sink, seq, &frame.bytes)?;
        out.write_busy_s += tw.elapsed().as_secs_f64();
        out.bytes_out += frame.bytes.len() as u64;
    }
    out.wall_s = t0.elapsed().as_secs_f64();
    Ok(out)
}

fn header_error(e: &io::Error) -> CoreError {
    CoreError::Pipeline(PipelineError {
        chunk: 0,
        attempts: 1,
        message: format!("header write failed: {e}"),
    })
}

fn accumulate(total: &mut CodecStats, s: &CodecStats) {
    total.elements += s.elements;
    total.input_bytes += s.input_bytes;
    total.output_bytes += s.output_bytes;
    total.literal_elements += s.literal_elements;
    total.coded_bits += s.coded_bits;
}

/// Bounded reorder queue between two pipeline stages.
///
/// Producers `push(seq, item)`; pushes block while `seq` is more than
/// `depth` ahead of the next unconsumed chunk (backpressure). Consumers
/// `pop_next()` items strictly in sequence order. The write pipeline
/// queues compressed [`Frame`]s ahead of the writer stage; the restart
/// pipeline queues prefetched `(tag, payload)` frames ahead of decode.
struct BoundedQueue<T> {
    state: Mutex<QueueState<T>>,
    space: Condvar,
    ready: Condvar,
    depth: usize,
}

struct QueueState<T> {
    slots: BTreeMap<usize, T>,
    /// Next sequence number the writer side will hand out.
    next_pop: usize,
    /// Set when a writer failed permanently: producers stop.
    poisoned: bool,
    /// Number of chunks in total (pop returns None past the end).
    total: usize,
    /// Chunks handed to writers but not yet committed — they still occupy
    /// queue capacity, so backpressure counts them.
    in_flight: usize,
}

impl<T> BoundedQueue<T> {
    fn new(depth: usize, total: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(QueueState {
                slots: BTreeMap::new(),
                next_pop: 0,
                poisoned: false,
                total,
                in_flight: 0,
            }),
            space: Condvar::new(),
            ready: Condvar::new(),
            depth,
        }
    }

    /// Block until `seq` fits in the window, then store the item.
    /// Returns `false` if the pipeline was poisoned (caller stops).
    fn push(&self, seq: usize, item: T) -> bool {
        let mut st = self.state.lock().expect("queue lock");
        loop {
            if st.poisoned {
                return false;
            }
            // Backpressure: the compressed-but-unwritten window (queued +
            // handed-out) may hold at most `depth` chunks.
            if seq < st.next_pop + self.depth - st.in_flight.min(self.depth) {
                break;
            }
            lcpio_trace::counter_add("pipeline.backpressure_waits", 1);
            st = self.space.wait(st).expect("queue lock");
        }
        st.slots.insert(seq, item);
        self.ready.notify_all();
        true
    }

    /// Block until the next in-order item is available; `None` when the
    /// stream is complete or poisoned.
    fn pop_next(&self) -> Option<(usize, T)> {
        let mut st = self.state.lock().expect("queue lock");
        loop {
            if st.poisoned || st.next_pop >= st.total {
                return None;
            }
            let seq = st.next_pop;
            if let Some(item) = st.slots.remove(&seq) {
                st.next_pop += 1;
                st.in_flight += 1;
                return Some((seq, item));
            }
            st = self.ready.wait(st).expect("queue lock");
        }
    }

    /// A consumer committed (or abandoned) a chunk: release its window
    /// slot.
    fn commit(&self) {
        let mut st = self.state.lock().expect("queue lock");
        st.in_flight = st.in_flight.saturating_sub(1);
        self.space.notify_all();
    }

    fn poison(&self) {
        let mut st = self.state.lock().expect("queue lock");
        st.poisoned = true;
        self.space.notify_all();
        self.ready.notify_all();
    }

    /// Fix the total chunk count after the fact. The streamed restart path
    /// opens the queue with an unknown total (`usize::MAX`) because a
    /// legacy `LCS1` stream only reveals its frame count at EOF; the
    /// feeder closes the queue once the last frame has been pushed so
    /// consumers can drain and exit.
    fn close(&self, total: usize) {
        let mut st = self.state.lock().expect("queue lock");
        st.total = total;
        self.space.notify_all();
        self.ready.notify_all();
    }
}

/// Serializes sink commits into sequence order across writer workers.
struct OrderedSink<'a> {
    inner: Mutex<SinkState<'a>>,
    turn: Condvar,
}

struct SinkState<'a> {
    sink: &'a mut dyn ChunkSink,
    next_commit: usize,
    failed: Option<CoreError>,
}

impl<'a> OrderedSink<'a> {
    /// Wait for `seq`'s turn, then write the frame with retry. On failure,
    /// record the typed error (first failure wins) and unblock everyone.
    fn commit(
        &self,
        cfg: &PipelineConfig,
        seq: usize,
        bytes: &[u8],
        retries: &AtomicU64,
        write_busy_ns: &AtomicU64,
    ) -> bool {
        let mut st = self.inner.lock().expect("sink lock");
        while st.failed.is_none() && st.next_commit != seq {
            st = self.turn.wait(st).expect("sink lock");
        }
        if st.failed.is_some() {
            return false;
        }
        let t0 = std::time::Instant::now();
        let result = write_with_retry(cfg, st.sink, seq, bytes);
        write_busy_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        match result {
            Ok(r) => {
                retries.fetch_add(r, Ordering::Relaxed);
                st.next_commit += 1;
                self.turn.notify_all();
                true
            }
            Err(e) => {
                st.failed = Some(e);
                self.turn.notify_all();
                false
            }
        }
    }
}

/// Run the overlapped streaming pipeline.
///
/// Compression workers (up to `compress_threads`) pull chunk indices from
/// an atomic cursor and push frames into the bounded queue; writer workers
/// (`writers`) drain it and commit to `sink` strictly in order, retrying
/// transient failures. The emitted stream is byte-identical to
/// [`run_sequential`] for every knob setting — overlap changes wall time,
/// never bytes.
///
/// On a permanent write failure every stage is stopped and the first
/// [`CoreError::Pipeline`] is returned; the sink may have received a
/// prefix of the stream (file-based callers write to a temporary path and
/// only rename on success — see the CLI's `pipeline` subcommand).
pub fn run_streaming(
    data: &[f32],
    cfg: &PipelineConfig,
    sink: &mut dyn ChunkSink,
) -> Result<StreamOutcome, CoreError> {
    cfg.validate()?;
    let _span = lcpio_trace::span("pipeline.streaming");
    let t0 = std::time::Instant::now();
    let ranges = chunk_ranges(data.len(), cfg.chunk_elements);
    let total = ranges.len();
    // Plans are computed up front on the calling thread: the wire header
    // needs the codec tags before the first frame, and a pure pre-pass is
    // what keeps the stream byte-identical at every worker count.
    let (plans, plan_s) = plan_chunks(cfg, data, &ranges);
    let tags = codec_tag_bytes(cfg, &plans);
    let header = header_bytes(
        cfg.wire_format,
        data.len() as u64,
        cfg.chunk_elements as u64,
        total,
        tags.as_deref(),
    );
    sink.write_header(&header).map_err(|e| header_error(&e))?;
    lcpio_trace::counter_add("pipeline.chunks", total as u64);

    let queue = BoundedQueue::new(cfg.queue_depth, total);
    let ordered = OrderedSink {
        inner: Mutex::new(SinkState { sink, next_commit: 0, failed: None }),
        turn: Condvar::new(),
    };
    let cursor = AtomicUsize::new(0);
    let compress_busy_ns = AtomicU64::new(0);
    let write_busy_ns = AtomicU64::new(0);
    let retries = AtomicU64::new(0);
    let raw_fallbacks = AtomicUsize::new(0);
    let codec_counts = [AtomicUsize::new(0), AtomicUsize::new(0), AtomicUsize::new(0)];
    let bytes_out = AtomicU64::new(header.len() as u64);
    let stats_acc: Mutex<CodecStats> = Mutex::new(CodecStats::default());

    let compress_workers = crate::par::effective_threads(cfg.compress_threads).min(total.max(1));
    std::thread::scope(|s| {
        for _ in 0..compress_workers {
            s.spawn(|| {
                let _span = lcpio_trace::span("pipeline.compress.worker");
                loop {
                    let seq = cursor.fetch_add(1, Ordering::Relaxed);
                    if seq >= total {
                        break;
                    }
                    let frame = compress_frame(cfg, seq, &data[ranges[seq].clone()], &plans[seq]);
                    compress_busy_ns
                        .fetch_add((frame.compress_s * 1e9) as u64, Ordering::Relaxed);
                    if let Some(st) = frame.stats {
                        accumulate(&mut stats_acc.lock().expect("stats lock"), &st);
                    }
                    codec_counts[frame.codec.as_u8() as usize].fetch_add(1, Ordering::Relaxed);
                    if frame.raw {
                        raw_fallbacks.fetch_add(1, Ordering::Relaxed);
                        lcpio_trace::counter_add("pipeline.raw_fallbacks", 1);
                    }
                    if !queue.push(seq, frame) {
                        break; // poisoned: a writer failed permanently
                    }
                }
            });
        }
        for _ in 0..cfg.writers {
            s.spawn(|| {
                let _span = lcpio_trace::span("pipeline.write.worker");
                while let Some((seq, frame)) = queue.pop_next() {
                    let ok =
                        ordered.commit(cfg, seq, &frame.bytes, &retries, &write_busy_ns);
                    queue.commit();
                    if !ok {
                        queue.poison();
                        break;
                    }
                    bytes_out.fetch_add(frame.bytes.len() as u64, Ordering::Relaxed);
                }
            });
        }
    });

    let failed = ordered.inner.into_inner().expect("sink lock").failed;
    if let Some(e) = failed {
        return Err(e);
    }
    Ok(StreamOutcome {
        chunks: total,
        bytes_in: data.len() as u64 * 4,
        bytes_out: bytes_out.into_inner(),
        raw_fallbacks: raw_fallbacks.into_inner(),
        write_retries: retries.into_inner(),
        stats: stats_acc.into_inner().expect("stats lock"),
        compress_busy_s: compress_busy_ns.into_inner() as f64 / 1e9,
        write_busy_s: write_busy_ns.into_inner() as f64 / 1e9,
        plan_s,
        codec_chunks: codec_counts.map(AtomicUsize::into_inner),
        wall_s: t0.elapsed().as_secs_f64(),
    })
}

// ---------------------------------------------------------------------------
// Restart: overlapped read→decompress pipeline
// ---------------------------------------------------------------------------

/// Random-access byte source the restart pipeline reads frames from.
///
/// Implementations must support *concurrent positioned reads* — multiple
/// reader threads issue `read_at` calls at distinct offsets at once.
pub trait ChunkSource: Send + Sync {
    /// Total stream length in bytes.
    fn len(&self) -> u64;

    /// Whether the stream is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fill `buf` from `offset`; a read past the end must error, never
    /// short-read.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()>;
}

/// A [`ChunkSource`] over an in-memory container stream.
pub struct SliceSource<'a> {
    bytes: &'a [u8],
}

impl<'a> SliceSource<'a> {
    /// Wrap a container stream held in memory.
    pub fn new(bytes: &'a [u8]) -> Self {
        SliceSource { bytes }
    }
}

impl ChunkSource for SliceSource<'_> {
    fn len(&self) -> u64 {
        self.bytes.len() as u64
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        let off = usize::try_from(offset)
            .map_err(|_| io::Error::new(io::ErrorKind::UnexpectedEof, "offset past end"))?;
        let end = off
            .checked_add(buf.len())
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "read past end"))?;
        buf.copy_from_slice(&self.bytes[off..end]);
        Ok(())
    }
}

/// A [`ChunkSource`] over a container file.
///
/// On Unix, readers share one descriptor and use positioned reads
/// (`pread`), so they never contend on a cursor; elsewhere a mutex
/// serializes seek+read.
pub struct FileSource {
    #[cfg(unix)]
    file: std::fs::File,
    #[cfg(not(unix))]
    file: Mutex<std::fs::File>,
    len: u64,
}

impl FileSource {
    /// Open a container file for positioned reads.
    pub fn open(path: &std::path::Path) -> io::Result<FileSource> {
        let file = std::fs::File::open(path)?;
        let len = file.metadata()?.len();
        #[cfg(unix)]
        {
            Ok(FileSource { file, len })
        }
        #[cfg(not(unix))]
        {
            Ok(FileSource { file: Mutex::new(file), len })
        }
    }
}

impl ChunkSource for FileSource {
    fn len(&self) -> u64 {
        self.len
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> io::Result<()> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt as _;
            self.file.read_exact_at(buf, offset)
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read as _, Seek as _, SeekFrom};
            let mut f = self.file.lock().expect("file lock");
            f.seek(SeekFrom::Start(offset))?;
            f.read_exact(buf)
        }
    }
}

/// One frame's location inside the container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FrameEntry {
    kind: u8,
    off: u64,
    len: usize,
}

/// Index of an `LCS1` container: the header fields plus the offset and
/// length of every frame, built by one cheap scan over the frame headers
/// (payloads untouched).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamLayout {
    /// Total element count promised by the header.
    pub elements: usize,
    /// Elements per chunk (the last chunk may be shorter).
    pub chunk_elements: usize,
    frames: Vec<FrameEntry>,
    codec_tags: Option<Vec<u8>>,
}

impl StreamLayout {
    /// Number of chunk frames in the container.
    pub fn chunks(&self) -> usize {
        self.frames.len()
    }

    /// Payload length in bytes of the largest frame — the dominant term of
    /// the streamed-restart buffering bound.
    pub fn max_frame_len(&self) -> usize {
        self.frames.iter().map(|f| f.len).max().unwrap_or(0)
    }

    /// Per-frame codec tags from the wire header's `CODEC_TAGS` TLV, if
    /// the container carried one (mixed-codec wire streams do; legacy and
    /// fixed-policy streams do not). Validated by the scan: one known id
    /// per frame, consistent with each compressed frame's payload magic.
    pub fn codec_tags(&self) -> Option<&[u8]> {
        self.codec_tags.as_deref()
    }
}

/// Scan a streaming container's header and frame table — either the
/// legacy `LCS1` layout or its `LCW1` wire form (auto-detected from the
/// magic).
///
/// Every length that later drives an allocation is validated here against
/// the *actual* stream size, so a forged header can never trigger a huge
/// pre-allocation: frame lengths must fit inside the stream, and the
/// promised element count is capped at 512× the payload bytes (no
/// supported frame expands further — SZ refuses past 8 elements per
/// payload byte, ZFP past 512, raw frames are 4 bytes per element).
pub fn scan_stream(source: &dyn ChunkSource) -> Result<StreamLayout, CoreError> {
    let err = |msg: &str| CoreError::Pipeline(PipelineError::new(0, 0, msg));
    let total = source.len();
    if total >= 4 {
        let mut magic = [0u8; 4];
        source.read_at(0, &mut magic).map_err(|e| err(&format!("header read failed: {e}")))?;
        if magic == lcpio_wire::MAGIC {
            return scan_wire_stream(source);
        }
    }
    if total < 20 {
        return Err(err("not an LCS1 stream"));
    }
    let mut head = [0u8; 20];
    source.read_at(0, &mut head).map_err(|e| err(&format!("header read failed: {e}")))?;
    if head[..4] != STREAM_MAGIC {
        return Err(err("not an LCS1 stream"));
    }
    let elements = u64::from_le_bytes(head[4..12].try_into().expect("8 bytes"));
    let chunk_elements = u64::from_le_bytes(head[12..20].try_into().expect("8 bytes"));
    if elements > (total - 20).saturating_mul(512) {
        return Err(err("element count exceeds stream capacity"));
    }
    let mut frames = Vec::new();
    let mut off = 20u64;
    let mut fh = [0u8; 5];
    while off < total {
        if off + 5 > total {
            return Err(err("truncated frame header"));
        }
        source
            .read_at(off, &mut fh)
            .map_err(|e| err(&format!("frame header read failed: {e}")))?;
        let kind = fh[0];
        let len = u64::from(u32::from_le_bytes(fh[1..5].try_into().expect("4 bytes")));
        off += 5;
        if len > total - off {
            return Err(err("truncated frame payload"));
        }
        if kind != FRAME_COMPRESSED && kind != FRAME_RAW {
            return Err(err("unknown frame tag"));
        }
        frames.push(FrameEntry { kind, off, len: len as usize });
        off += len;
    }
    Ok(StreamLayout {
        elements: elements as usize,
        chunk_elements: chunk_elements as usize,
        frames,
        codec_tags: None,
    })
}

/// Typed error for a wire-envelope failure inside the core pipeline.
fn wire_err(e: lcpio_wire::WireError) -> CoreError {
    CoreError::Pipeline(PipelineError::new(0, 0, format!("wire envelope: {e}")))
}

/// Cross-check one frame against its header codec tag.
///
/// `FRAME_RAW` is accepted under any tag: the raw fallback keeps the
/// *planned* codec's tag (the header is written before compression runs).
/// A compressed frame must carry the tagged codec's container magic — an
/// unknown id or a forged tag is a typed error, caught during the scan
/// before any decode work. `magic` is the first (up to four) payload
/// bytes after the kind byte.
fn check_codec_tag(seq: usize, tag_byte: u8, kind: u8, magic: &[u8]) -> Result<(), CoreError> {
    let err = |msg: &str| CoreError::Pipeline(PipelineError::new(seq, 0, msg));
    let Some(tagged) = CodecId::from_u8(tag_byte) else {
        return Err(err("unknown codec id in codec-tag field"));
    };
    if kind != FRAME_COMPRESSED {
        return Ok(());
    }
    if tagged == CodecId::Raw {
        return Err(err("codec tag mismatch: raw tag on compressed frame"));
    }
    if magic.len() >= 4 && magic[..4] == lcpio_wire::MAGIC {
        // A wire-wrapped payload's inner codec resolves only through its
        // own envelope; the cheap scan leaves it to decode-time checks.
        return Ok(());
    }
    match lcpio_codec::registry().by_magic(magic) {
        Ok((codec, _)) if codec.name() == tagged.name() => Ok(()),
        _ => Err(err("codec tag mismatch: frame payload carries a different codec")),
    }
}

/// Scan the `LCW1` wire form of the streaming container into the same
/// [`StreamLayout`] the legacy scan produces, so every decode path (serial
/// decode, sequential restart, overlapped restart) handles both forms
/// identically.
///
/// The scan reads only the envelope header plus ~10 bytes per frame
/// boundary — payloads stay untouched — and applies the same validation as
/// the legacy path: frame extents proven in-bounds with checked
/// arithmetic, nothing trailing the final frame, and the promised element
/// count capped at 512× the payload bytes.
fn scan_wire_stream(source: &dyn ChunkSource) -> Result<StreamLayout, CoreError> {
    use lcpio_wire::envelope::parse_header_partial;
    use lcpio_wire::varint::{self, Partial};

    let err = |msg: &str| CoreError::Pipeline(PipelineError::new(0, 0, msg));
    let read_err = |e: io::Error| err(&format!("header read failed: {e}"));
    let total = source.len();

    // Incrementally widen the header window until the envelope parses; it
    // is bounded by the wire crate's 1 MiB TLV-block ceiling.
    let cap = total.min(lcpio_wire::MAX_HEADER_LEN as u64 + 64) as usize;
    let mut want = cap.min(256);
    let (elements, chunk_elements, frame_count, frames_at, codec_tags) = loop {
        let mut buf = vec![0u8; want];
        source.read_at(0, &mut buf).map_err(read_err)?;
        match parse_header_partial(&buf).map_err(wire_err)? {
            Partial::Ready(env, used) => {
                if env.container != STREAM_MAGIC {
                    return Err(err("wire envelope does not carry an LCS1 stream"));
                }
                let params =
                    env.params().ok_or_else(|| err("wire LCS1 header missing params"))?;
                let p: [u8; 16] =
                    params.try_into().map_err(|_| err("wire LCS1 params must be 16 bytes"))?;
                let elements = u64::from_le_bytes(p[..8].try_into().expect("8 bytes"));
                let chunk_elements = u64::from_le_bytes(p[8..].try_into().expect("8 bytes"));
                let tags = env.codec_tags().map_err(wire_err)?.map(|t| t.to_vec());
                break (elements, chunk_elements, env.frame_count, used as u64, tags);
            }
            Partial::NeedMore => {
                if want >= cap {
                    return Err(err("truncated wire envelope header"));
                }
                want = (want * 2).min(cap);
            }
        }
    };
    if elements > (total - frames_at).saturating_mul(512) {
        return Err(err("element count exceeds stream capacity"));
    }

    let mut frames = Vec::with_capacity(frame_count.min(1 << 16));
    let mut off = frames_at;
    for _ in 0..frame_count {
        let avail = (total - off).min(varint::MAX_LEN as u64) as usize;
        let mut fh = vec![0u8; avail];
        source
            .read_at(off, &mut fh)
            .map_err(|e| err(&format!("frame header read failed: {e}")))?;
        let (len, used) = match varint::read_partial(&fh).map_err(wire_err)? {
            Partial::Ready(len, used) => (len, used),
            Partial::NeedMore => return Err(err("truncated frame header")),
        };
        if len == 0 {
            return Err(err("empty wire frame (missing kind byte)"));
        }
        let payload_at = off + used as u64;
        if len > total - payload_at {
            return Err(err("truncated frame payload"));
        }
        let mut kind = [0u8; 1];
        source
            .read_at(payload_at, &mut kind)
            .map_err(|e| err(&format!("frame header read failed: {e}")))?;
        let kind = kind[0];
        if kind != FRAME_COMPRESSED && kind != FRAME_RAW {
            return Err(err("unknown frame tag"));
        }
        if let Some(tags) = &codec_tags {
            let take = ((len - 1).min(4)) as usize;
            let mut magic = [0u8; 4];
            if take > 0 {
                source
                    .read_at(payload_at + 1, &mut magic[..take])
                    .map_err(|e| err(&format!("frame header read failed: {e}")))?;
            }
            check_codec_tag(frames.len(), tags[frames.len()], kind, &magic[..take])?;
        }
        frames.push(FrameEntry { kind, off: payload_at + 1, len: (len - 1) as usize });
        off = payload_at + len;
    }
    if off != total {
        return Err(err("trailing bytes after final wire frame"));
    }
    Ok(StreamLayout {
        elements: elements as usize,
        chunk_elements: chunk_elements as usize,
        frames,
        codec_tags,
    })
}

/// Decode one frame payload into its elements. Shared by [`decode_stream`]
/// and the restart pipeline so both paths apply identical rules.
fn decode_frame(kind: u8, payload: &[u8], seq: usize) -> Result<Vec<f32>, CoreError> {
    let err = |msg: String| CoreError::Pipeline(PipelineError::new(seq, 0, msg));
    match kind {
        FRAME_COMPRESSED => {
            let (vals, _dims) = lcpio_codec::registry()
                .decompress_auto(payload, 1)
                .map_err(|e| err(format!("chunk decode failed: {e}")))?;
            Ok(vals)
        }
        FRAME_RAW => {
            if !payload.len().is_multiple_of(4) {
                return Err(err("raw frame length not a multiple of 4".to_string()));
            }
            Ok(payload
                .chunks_exact(4)
                .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                .collect())
        }
        _ => Err(err("unknown frame tag".to_string())),
    }
}

/// Decode an `LCS1` stream back into the flat element array.
///
/// Compressed frames go through the registry's magic sniffing; raw frames
/// are read verbatim. The serial reference the restart pipeline must
/// match element-for-element.
pub fn decode_stream(stream: &[u8]) -> Result<Vec<f32>, CoreError> {
    let source = SliceSource::new(stream);
    let layout = scan_stream(&source)?;
    let mut out = Vec::with_capacity(layout.elements);
    for (seq, f) in layout.frames.iter().enumerate() {
        let payload = &stream[f.off as usize..f.off as usize + f.len];
        out.extend_from_slice(&decode_frame(f.kind, payload, seq)?);
    }
    if out.len() != layout.elements {
        return Err(CoreError::Pipeline(PipelineError::new(0, 0, "element count mismatch")));
    }
    Ok(out)
}

/// Configuration of the overlapped restart (read→decompress) pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct RestartConfig {
    /// Bounded prefetch-queue depth: at most this many read-but-undecoded
    /// frames exist at once (≥ 1).
    pub queue_depth: usize,
    /// Reader workers issuing positioned frame reads (≥ 1).
    pub readers: usize,
    /// Decode workers draining the prefetch queue (0 ⇒ all cores).
    pub workers: usize,
    /// Read attempts per frame before the pipeline fails (≥ 1).
    pub max_read_attempts: u32,
    /// Decode attempts per frame before the pipeline fails (≥ 1). Only a
    /// worker death (injected) is retried — the payload is intact; a
    /// corrupt payload is permanent and fails fast.
    pub max_decode_attempts: u32,
    /// Backoff between read retries, in milliseconds, scaled linearly by
    /// the attempt number (tests use 0).
    pub retry_backoff_ms: u64,
    /// Injected failures (empty in production).
    pub failure_plan: FailurePlan,
}

impl Default for RestartConfig {
    fn default() -> Self {
        RestartConfig {
            queue_depth: 4,
            readers: 1,
            workers: 0,
            max_read_attempts: 3,
            max_decode_attempts: 2,
            retry_backoff_ms: 1,
            failure_plan: FailurePlan::default(),
        }
    }
}

impl RestartConfig {
    /// Reject degenerate knob settings with a typed error.
    pub fn validate(&self) -> Result<(), CoreError> {
        let bad = |msg: &str| Err(CoreError::Pipeline(PipelineError::new(0, 0, msg)));
        if self.queue_depth == 0 {
            return bad("queue_depth must be at least 1");
        }
        if self.readers == 0 {
            return bad("readers must be at least 1");
        }
        if self.max_read_attempts == 0 {
            return bad("max_read_attempts must be at least 1");
        }
        if self.max_decode_attempts == 0 {
            return bad("max_decode_attempts must be at least 1");
        }
        Ok(())
    }
}

/// Outcome of one restart (read→decompress) execution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RestartOutcome {
    /// Chunk frames decoded.
    pub chunks: usize,
    /// Elements restored.
    pub elements: usize,
    /// Container bytes read (header + all frames).
    pub bytes_in: u64,
    /// Restored payload bytes (`elements × 4`).
    pub bytes_out: u64,
    /// Frames that were stored raw (write-side codec-failure fallback).
    pub raw_frames: usize,
    /// Read retries that eventually succeeded.
    pub read_retries: u64,
    /// Decode retries (worker deaths) that eventually succeeded.
    pub decode_retries: u64,
    /// Wall-clock seconds inside frame reads (summed across readers —
    /// busy time, not elapsed time).
    pub read_busy_s: f64,
    /// Wall-clock seconds inside chunk decodes (busy time).
    pub decode_busy_s: f64,
    /// Elapsed wall-clock seconds for the whole run.
    pub wall_s: f64,
    /// High-water mark of undecoded bytes buffered by the incremental
    /// framer ([`run_restart_streamed`] only; 0 on the random-access
    /// paths). Bounded by one frame plus one read-buffer fill — asserted
    /// by `ext_wire_stream` — so streamed restart never holds the
    /// container in memory.
    pub peak_buffered_bytes: usize,
}

impl RestartOutcome {
    /// Compression ratio observed on the read side.
    pub fn ratio(&self) -> f64 {
        if self.bytes_in == 0 { 0.0 } else { self.bytes_out as f64 / self.bytes_in as f64 }
    }
}

/// Read one frame's payload with bounded retry/backoff.
///
/// Returns the payload and the number of retries that preceded the
/// successful attempt, or the typed error after `max_read_attempts`
/// failures. The allocation is safe against forged lengths: `entry.len`
/// was validated against the stream size by [`scan_stream`].
fn read_frame_with_retry(
    cfg: &RestartConfig,
    source: &dyn ChunkSource,
    seq: usize,
    entry: FrameEntry,
) -> Result<(Vec<u8>, u64), CoreError> {
    let mut last = String::new();
    for attempt in 0..cfg.max_read_attempts {
        if attempt > 0 && cfg.retry_backoff_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(
                cfg.retry_backoff_ms * attempt as u64,
            ));
        }
        let result = if cfg.failure_plan.read_fails(seq, attempt) {
            Err(io::Error::other("injected read failure"))
        } else {
            let mut buf = vec![0u8; entry.len];
            source.read_at(entry.off, &mut buf).map(|()| buf)
        };
        match result {
            Ok(buf) => {
                lcpio_trace::counter_add("restart.read_retries", attempt as u64);
                return Ok((buf, attempt as u64));
            }
            Err(e) => last = e.to_string(),
        }
    }
    Err(CoreError::Pipeline(PipelineError::new(
        seq,
        cfg.max_read_attempts,
        format!("read failed after {} attempts: {last}", cfg.max_read_attempts),
    )))
}

/// Decode one frame, honouring injected worker deaths.
///
/// A death is transient — the payload is intact, so the chunk is retried
/// up to `max_decode_attempts` times. A real decode error (corrupt
/// payload) is permanent and fails fast without burning retries.
fn decode_with_retry(
    cfg: &RestartConfig,
    kind: u8,
    payload: &[u8],
    seq: usize,
) -> Result<(Vec<f32>, u64), CoreError> {
    for attempt in 0..cfg.max_decode_attempts {
        if cfg.failure_plan.decode_fails(seq, attempt) {
            lcpio_trace::counter_add("restart.decode_retries", 1);
            continue;
        }
        return decode_frame(kind, payload, seq).map(|v| (v, attempt as u64));
    }
    Err(CoreError::Pipeline(PipelineError::new(
        seq,
        cfg.max_decode_attempts,
        format!("decode worker died {} times", cfg.max_decode_attempts),
    )))
}

/// Run the *sequential* restart reference: read a frame, decode it,
/// append, repeat. Same frame rules as [`run_restart`], no overlap — the
/// baseline the overlapped path must match element-for-element and beat
/// on wall time.
pub fn run_restart_sequential(
    source: &dyn ChunkSource,
    cfg: &RestartConfig,
) -> Result<(Vec<f32>, RestartOutcome), CoreError> {
    cfg.validate()?;
    let _span = lcpio_trace::span("restart.sequential");
    let t0 = std::time::Instant::now();
    let layout = scan_stream(source)?;
    let mut out = RestartOutcome {
        chunks: layout.chunks(),
        bytes_in: source.len(),
        ..RestartOutcome::default()
    };
    let mut vals = Vec::with_capacity(layout.elements);
    for (seq, entry) in layout.frames.iter().enumerate() {
        let tr = std::time::Instant::now();
        let (payload, retries) = read_frame_with_retry(cfg, source, seq, *entry)?;
        out.read_busy_s += tr.elapsed().as_secs_f64();
        out.read_retries += retries;
        if entry.kind == FRAME_RAW {
            out.raw_frames += 1;
        }
        let td = std::time::Instant::now();
        let (chunk, decode_retries) = decode_with_retry(cfg, entry.kind, &payload, seq)?;
        out.decode_busy_s += td.elapsed().as_secs_f64();
        out.decode_retries += decode_retries;
        vals.extend_from_slice(&chunk);
    }
    if vals.len() != layout.elements {
        return Err(CoreError::Pipeline(PipelineError::new(0, 0, "element count mismatch")));
    }
    out.elements = vals.len();
    out.bytes_out = vals.len() as u64 * 4;
    out.wall_s = t0.elapsed().as_secs_f64();
    Ok((vals, out))
}

/// Reassembles decoded chunks into the output buffer in sequence order
/// across decode workers — the reorder stage of the restart pipeline.
struct OrderedOutput {
    inner: Mutex<OutState>,
    turn: Condvar,
}

struct OutState {
    out: Vec<f32>,
    next_commit: usize,
    failed: Option<CoreError>,
}

impl OrderedOutput {
    /// Wait for `seq`'s turn, then append the chunk. Returns `false` if
    /// the pipeline already failed.
    fn commit(&self, seq: usize, vals: &[f32]) -> bool {
        let mut st = self.inner.lock().expect("output lock");
        while st.failed.is_none() && st.next_commit != seq {
            st = self.turn.wait(st).expect("output lock");
        }
        if st.failed.is_some() {
            return false;
        }
        st.out.extend_from_slice(vals);
        st.next_commit += 1;
        self.turn.notify_all();
        true
    }

    /// Record the first failure and unblock every turn-waiter.
    fn fail(&self, e: CoreError) {
        let mut st = self.inner.lock().expect("output lock");
        if st.failed.is_none() {
            st.failed = Some(e);
        }
        self.turn.notify_all();
    }
}

/// Run the overlapped restart pipeline.
///
/// Reader workers pull frame indices from an atomic cursor, issue
/// positioned reads, and push payloads into the bounded prefetch queue;
/// decode workers drain it strictly in order and reassemble chunks
/// through the reorder stage. The output is element-identical to
/// [`run_restart_sequential`] (and to serial [`decode_stream`]) at every
/// queue depth, reader count, and worker count — overlap changes wall
/// time, never values.
///
/// On a permanent read or decode failure every stage stops and the first
/// typed [`CoreError::Pipeline`] is returned — never a panic, never a
/// silent partial result.
pub fn run_restart(
    source: &dyn ChunkSource,
    cfg: &RestartConfig,
) -> Result<(Vec<f32>, RestartOutcome), CoreError> {
    cfg.validate()?;
    let _span = lcpio_trace::span("restart.streaming");
    let t0 = std::time::Instant::now();
    let layout = scan_stream(source)?;
    let total = layout.chunks();
    lcpio_trace::counter_add("restart.chunks", total as u64);

    let queue: BoundedQueue<(u8, Vec<u8>)> = BoundedQueue::new(cfg.queue_depth, total);
    let ordered = OrderedOutput {
        inner: Mutex::new(OutState {
            out: Vec::with_capacity(layout.elements),
            next_commit: 0,
            failed: None,
        }),
        turn: Condvar::new(),
    };
    let cursor = AtomicUsize::new(0);
    let read_busy_ns = AtomicU64::new(0);
    let decode_busy_ns = AtomicU64::new(0);
    let read_retries = AtomicU64::new(0);
    let decode_retries = AtomicU64::new(0);
    let raw_frames = AtomicUsize::new(0);

    let readers = cfg.readers.min(total.max(1));
    let workers = crate::par::effective_threads(cfg.workers).min(total.max(1));
    std::thread::scope(|s| {
        for _ in 0..readers {
            s.spawn(|| {
                let _span = lcpio_trace::span("restart.read.worker");
                loop {
                    let seq = cursor.fetch_add(1, Ordering::Relaxed);
                    if seq >= total {
                        break;
                    }
                    let entry = layout.frames[seq];
                    let tr = std::time::Instant::now();
                    match read_frame_with_retry(cfg, source, seq, entry) {
                        Ok((payload, r)) => {
                            read_busy_ns
                                .fetch_add(tr.elapsed().as_nanos() as u64, Ordering::Relaxed);
                            read_retries.fetch_add(r, Ordering::Relaxed);
                            if entry.kind == FRAME_RAW {
                                raw_frames.fetch_add(1, Ordering::Relaxed);
                            }
                            if !queue.push(seq, (entry.kind, payload)) {
                                break; // poisoned: another stage failed
                            }
                        }
                        Err(e) => {
                            ordered.fail(e);
                            queue.poison();
                            break;
                        }
                    }
                }
            });
        }
        for _ in 0..workers {
            s.spawn(|| {
                let _span = lcpio_trace::span("restart.decode.worker");
                while let Some((seq, (kind, payload))) = queue.pop_next() {
                    let td = std::time::Instant::now();
                    let result = decode_with_retry(cfg, kind, &payload, seq);
                    decode_busy_ns.fetch_add(td.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    match result {
                        Ok((vals, r)) => {
                            decode_retries.fetch_add(r, Ordering::Relaxed);
                            let ok = ordered.commit(seq, &vals);
                            queue.commit();
                            if !ok {
                                queue.poison();
                                break;
                            }
                        }
                        Err(e) => {
                            ordered.fail(e);
                            queue.commit();
                            queue.poison();
                            break;
                        }
                    }
                }
            });
        }
    });

    let st = ordered.inner.into_inner().expect("output lock");
    if let Some(e) = st.failed {
        return Err(e);
    }
    let vals = st.out;
    if vals.len() != layout.elements {
        return Err(CoreError::Pipeline(PipelineError::new(0, 0, "element count mismatch")));
    }
    let outcome = RestartOutcome {
        chunks: total,
        elements: vals.len(),
        bytes_in: source.len(),
        bytes_out: vals.len() as u64 * 4,
        raw_frames: raw_frames.into_inner(),
        read_retries: read_retries.into_inner(),
        decode_retries: decode_retries.into_inner(),
        read_busy_s: read_busy_ns.into_inner() as f64 / 1e9,
        decode_busy_s: decode_busy_ns.into_inner() as f64 / 1e9,
        wall_s: t0.elapsed().as_secs_f64(),
        peak_buffered_bytes: 0,
    };
    Ok((vals, outcome))
}

/// Incremental frame splitter for the *legacy* `LCS1` byte layout — the
/// push-mode sibling of the wire crate's `StreamDecoder`, for sources that
/// only support forward reads.
struct LegacyFramer {
    buf: Vec<u8>,
    /// `(elements, chunk_elements)` once the 20-byte header has arrived.
    geometry: Option<(u64, u64)>,
    peak: usize,
}

impl LegacyFramer {
    fn new() -> Self {
        LegacyFramer { buf: Vec::new(), geometry: None, peak: 0 }
    }

    /// Push bytes in; get back every `(kind, payload)` frame they
    /// completed. Errors are terminal.
    fn feed(&mut self, chunk: &[u8]) -> Result<Vec<(u8, Vec<u8>)>, CoreError> {
        let err = |msg: &str| CoreError::Pipeline(PipelineError::new(0, 0, msg));
        self.buf.extend_from_slice(chunk);
        self.peak = self.peak.max(self.buf.len());
        let mut out = Vec::new();
        let mut cursor = 0usize;
        if self.geometry.is_none() {
            if self.buf.len() < 20 {
                return Ok(out);
            }
            if self.buf[..4] != STREAM_MAGIC {
                return Err(err("not an LCS1 stream"));
            }
            let elements = u64::from_le_bytes(self.buf[4..12].try_into().expect("8 bytes"));
            let chunk_elements =
                u64::from_le_bytes(self.buf[12..20].try_into().expect("8 bytes"));
            self.geometry = Some((elements, chunk_elements));
            cursor = 20;
        }
        loop {
            let rest = &self.buf[cursor..];
            if rest.len() < 5 {
                break;
            }
            let kind = rest[0];
            if kind != FRAME_COMPRESSED && kind != FRAME_RAW {
                return Err(err("unknown frame tag"));
            }
            let len = u32::from_le_bytes(rest[1..5].try_into().expect("4 bytes")) as usize;
            if rest.len() < 5 + len {
                break; // partial frame: wait for more bytes
            }
            out.push((kind, rest[5..5 + len].to_vec()));
            cursor += 5 + len;
        }
        self.buf.drain(..cursor);
        Ok(out)
    }

    /// Declare end-of-input; errors if a header or frame is incomplete.
    fn finish(&self) -> Result<(), CoreError> {
        let err = |msg: &str| CoreError::Pipeline(PipelineError::new(0, 0, msg));
        if self.geometry.is_none() {
            return Err(err("truncated LCS1 header"));
        }
        if !self.buf.is_empty() {
            return Err(err("truncated frame"));
        }
        Ok(())
    }
}

/// Format-sniffing push framer: buffers the first four bytes, then routes
/// everything through either the wire crate's incremental
/// [`StreamDecoder`](lcpio_wire::stream::StreamDecoder) (`LCW1`) or the
/// [`LegacyFramer`] (`LCS1`).
enum FramerKind {
    Sniff,
    Wire(lcpio_wire::stream::StreamDecoder),
    Legacy(LegacyFramer),
}

struct PushFramer {
    kind: FramerKind,
    pending: Vec<u8>,
    elements: Option<u64>,
    /// `CODEC_TAGS` from the wire header, once it has arrived.
    tags: Option<Vec<u8>>,
    /// Frames handed out so far — indexes into `tags`.
    next_frame: usize,
}

impl PushFramer {
    fn new() -> Self {
        PushFramer {
            kind: FramerKind::Sniff,
            pending: Vec::new(),
            elements: None,
            tags: None,
            next_frame: 0,
        }
    }

    fn feed(&mut self, chunk: &[u8]) -> Result<Vec<(u8, Vec<u8>)>, CoreError> {
        if matches!(self.kind, FramerKind::Sniff) {
            self.pending.extend_from_slice(chunk);
            if self.pending.len() < 4 {
                return Ok(Vec::new());
            }
            let buffered = std::mem::take(&mut self.pending);
            self.kind = if buffered[..4] == lcpio_wire::MAGIC {
                FramerKind::Wire(lcpio_wire::stream::StreamDecoder::new())
            } else {
                FramerKind::Legacy(LegacyFramer::new())
            };
            return self.dispatch(&buffered);
        }
        self.dispatch(chunk)
    }

    fn dispatch(&mut self, chunk: &[u8]) -> Result<Vec<(u8, Vec<u8>)>, CoreError> {
        let err = |msg: &str| CoreError::Pipeline(PipelineError::new(0, 0, msg));
        match &mut self.kind {
            FramerKind::Wire(dec) => {
                let frames = dec.feed(chunk).map_err(wire_err)?;
                if self.elements.is_none() {
                    if let Some(h) = dec.header() {
                        if h.container != STREAM_MAGIC {
                            return Err(err("wire envelope does not carry an LCS1 stream"));
                        }
                        let env = h.envelope();
                        let params =
                            env.params().ok_or_else(|| err("wire LCS1 header missing params"))?;
                        let p: [u8; 16] = params
                            .try_into()
                            .map_err(|_| err("wire LCS1 params must be 16 bytes"))?;
                        self.elements =
                            Some(u64::from_le_bytes(p[..8].try_into().expect("8 bytes")));
                        self.tags = env.codec_tags().map_err(wire_err)?.map(|t| t.to_vec());
                    }
                }
                let mut out = Vec::with_capacity(frames.len());
                for f in frames {
                    let Some((&kind, payload)) = f.payload.split_first() else {
                        return Err(err("empty wire frame (missing kind byte)"));
                    };
                    if kind != FRAME_COMPRESSED && kind != FRAME_RAW {
                        return Err(err("unknown frame tag"));
                    }
                    if let Some(tags) = &self.tags {
                        if let Some(&tb) = tags.get(self.next_frame) {
                            let magic = &payload[..payload.len().min(4)];
                            check_codec_tag(self.next_frame, tb, kind, magic)?;
                        }
                    }
                    self.next_frame += 1;
                    out.push((kind, payload.to_vec()));
                }
                Ok(out)
            }
            FramerKind::Legacy(fr) => {
                let out = fr.feed(chunk)?;
                if self.elements.is_none() {
                    if let Some((e, _)) = fr.geometry {
                        self.elements = Some(e);
                    }
                }
                Ok(out)
            }
            FramerKind::Sniff => unreachable!("sniff resolved on first 4 bytes"),
        }
    }

    fn finish(&self) -> Result<(), CoreError> {
        match &self.kind {
            FramerKind::Sniff => {
                Err(CoreError::Pipeline(PipelineError::new(0, 0, "truncated stream")))
            }
            FramerKind::Wire(dec) => dec.finish().map_err(wire_err),
            FramerKind::Legacy(fr) => fr.finish(),
        }
    }

    /// Element count promised by the header, once it has arrived.
    fn elements(&self) -> Option<u64> {
        self.elements
    }

    /// High-water mark of bytes buffered awaiting a frame boundary.
    fn peak_buffered(&self) -> usize {
        match &self.kind {
            FramerKind::Sniff => self.pending.len(),
            FramerKind::Wire(dec) => dec.peak_buffered(),
            FramerKind::Legacy(fr) => fr.peak,
        }
    }
}

/// Bytes per `read` call in [`run_restart_streamed`]. Small enough that
/// the framer's buffering bound (one frame + one read) stays tight, large
/// enough to amortize syscalls.
const STREAM_READ_BYTES: usize = 1 << 16;

/// Run the restart pipeline over a *forward-only* byte stream — a pipe, a
/// socket, a sequential file read — with incremental push decoding.
///
/// Unlike [`run_restart`], which needs a random-access [`ChunkSource`] and
/// an up-front frame-table scan, this path parses frames as bytes arrive
/// (sniffing `LCW1` wire envelopes vs legacy `LCS1` from the first four
/// bytes) and hands each completed frame to the decode-worker pool
/// immediately — decode of chunk *k* overlaps arrival of chunk *k+1*, and
/// peak buffering is bounded by one frame plus the bounded queue
/// ([`RestartOutcome::peak_buffered_bytes`]) rather than the container
/// size. Output is element-identical to [`run_restart_sequential`] on the
/// same container.
///
/// The failure plan's `read_failures` are not honoured here (a
/// forward-only stream cannot replay a positioned read); `decode_failures`
/// behave exactly as in [`run_restart`].
pub fn run_restart_streamed(
    reader: &mut dyn io::Read,
    cfg: &RestartConfig,
) -> Result<(Vec<f32>, RestartOutcome), CoreError> {
    cfg.validate()?;
    let _span = lcpio_trace::span("restart.streamed");
    let t0 = std::time::Instant::now();

    let queue: BoundedQueue<(u8, Vec<u8>)> = BoundedQueue::new(cfg.queue_depth, usize::MAX);
    let ordered = OrderedOutput {
        inner: Mutex::new(OutState { out: Vec::new(), next_commit: 0, failed: None }),
        turn: Condvar::new(),
    };
    let decode_busy_ns = AtomicU64::new(0);
    let decode_retries = AtomicU64::new(0);
    let raw_frames = AtomicUsize::new(0);
    let workers = crate::par::effective_threads(cfg.workers).max(1);

    let mut total_frames = 0usize;
    let mut bytes_in = 0u64;
    let mut read_busy_s = 0.0f64;
    let mut framer = PushFramer::new();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let _span = lcpio_trace::span("restart.decode.worker");
                while let Some((seq, (kind, payload))) = queue.pop_next() {
                    let td = std::time::Instant::now();
                    let result = decode_with_retry(cfg, kind, &payload, seq);
                    decode_busy_ns.fetch_add(td.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    match result {
                        Ok((vals, r)) => {
                            decode_retries.fetch_add(r, Ordering::Relaxed);
                            let ok = ordered.commit(seq, &vals);
                            queue.commit();
                            if !ok {
                                queue.poison();
                                break;
                            }
                        }
                        Err(e) => {
                            ordered.fail(e);
                            queue.commit();
                            queue.poison();
                            break;
                        }
                    }
                }
            });
        }

        // Feeder: runs on the calling thread, reading forward and pushing
        // completed frames into the bounded queue (backpressure caps how
        // far arrival runs ahead of decode).
        let mut rbuf = vec![0u8; STREAM_READ_BYTES];
        let mut seq = 0usize;
        'feed: loop {
            let tr = std::time::Instant::now();
            let n = match reader.read(&mut rbuf) {
                Ok(n) => n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    ordered.fail(CoreError::Pipeline(PipelineError::new(
                        seq,
                        1,
                        format!("stream read failed: {e}"),
                    )));
                    queue.poison();
                    break;
                }
            };
            read_busy_s += tr.elapsed().as_secs_f64();
            if n == 0 {
                match framer.finish() {
                    Ok(()) => queue.close(seq),
                    Err(e) => {
                        ordered.fail(e);
                        queue.poison();
                    }
                }
                break;
            }
            bytes_in += n as u64;
            match framer.feed(&rbuf[..n]) {
                Ok(frames) => {
                    for (kind, payload) in frames {
                        if kind == FRAME_RAW {
                            raw_frames.fetch_add(1, Ordering::Relaxed);
                        }
                        if !queue.push(seq, (kind, payload)) {
                            break 'feed; // poisoned: a decode worker failed
                        }
                        seq += 1;
                    }
                }
                Err(e) => {
                    ordered.fail(e);
                    queue.poison();
                    break;
                }
            }
        }
        total_frames = seq;
    });

    let st = ordered.inner.into_inner().expect("output lock");
    if let Some(e) = st.failed {
        return Err(e);
    }
    let vals = st.out;
    let expected = framer.elements().unwrap_or(0);
    if vals.len() as u64 != expected {
        return Err(CoreError::Pipeline(PipelineError::new(0, 0, "element count mismatch")));
    }
    let outcome = RestartOutcome {
        chunks: total_frames,
        elements: vals.len(),
        bytes_in,
        bytes_out: vals.len() as u64 * 4,
        raw_frames: raw_frames.into_inner(),
        read_retries: 0,
        decode_retries: decode_retries.into_inner(),
        read_busy_s,
        decode_busy_s: decode_busy_ns.into_inner() as f64 / 1e9,
        wall_s: t0.elapsed().as_secs_f64(),
        peak_buffered_bytes: framer.peak_buffered(),
    };
    Ok((vals, outcome))
}

// ---------------------------------------------------------------------------
// Simulated overlapped energy/time model
// ---------------------------------------------------------------------------

/// Makespan of a two-stage pipeline with a bounded queue of `depth`.
///
/// `t_c[k]` / `t_w[k]` are per-chunk compression and write times. One
/// compression stream feeds one (order-preserving) write stream;
/// compression of chunk `k` cannot *start* until chunk `k - depth` has
/// finished writing (its queue slot frees up). `depth = 0` is treated as 1.
pub fn overlap_makespan(t_c: &[f64], t_w: &[f64], depth: usize) -> f64 {
    assert_eq!(t_c.len(), t_w.len(), "one write per compressed chunk");
    let depth = depth.max(1);
    let mut comp_finish = 0.0f64;
    let mut write_finish = vec![0.0f64; t_c.len()];
    for k in 0..t_c.len() {
        let gate = if k >= depth { write_finish[k - depth] } else { 0.0 };
        let start = comp_finish.max(gate);
        comp_finish = start + t_c[k];
        let prev_write = if k > 0 { write_finish[k - 1] } else { 0.0 };
        write_finish[k] = comp_finish.max(prev_write) + t_w[k];
    }
    write_finish.last().copied().unwrap_or(0.0)
}

/// Per-phase energy and both wall-time accountings of one simulated dump.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct OverlapOutcome {
    /// Compression energy (J) — identical to the sequential accounting.
    pub compression_j: f64,
    /// Write energy (J) — identical to the sequential accounting.
    pub writing_j: f64,
    /// Sequential wall time: Σ t_c + Σ t_w (s).
    pub sequential_s: f64,
    /// Overlapped wall time at the configured queue depth (s).
    pub pipelined_s: f64,
}

impl OverlapOutcome {
    /// Total energy (J) — the same joules as the sequential path; overlap
    /// must never double-count.
    pub fn total_j(&self) -> f64 {
        self.compression_j + self.writing_j
    }

    /// Sequential / pipelined wall time (≥ 1 for depth ≥ 1).
    pub fn speedup(&self) -> f64 {
        if self.pipelined_s > 0.0 { self.sequential_s / self.pipelined_s } else { 1.0 }
    }
}

/// Simulate a dump of `chunks` identical chunks through the overlapped
/// pipeline on `machine`: compression at `f_comp` with `comp_profile` per
/// chunk, writing at `f_write` with `write_profile` per chunk.
///
/// Energy is accumulated per chunk and per phase — exactly the sequential
/// sums — while the makespan comes from [`overlap_makespan`]. The
/// per-phase split therefore stays correct under overlap: joules are
/// attributed to the stage that burns them, never to wall-clock overlap.
pub fn simulate_pipeline(
    machine: &Machine,
    f_comp: f64,
    f_write: f64,
    comp_profile: &WorkProfile,
    write_profile: &WorkProfile,
    chunks: usize,
    queue_depth: usize,
) -> OverlapOutcome {
    let _span = lcpio_trace::span("pipeline.simulate");
    let c = simulate(machine, f_comp, comp_profile);
    let w = simulate(machine, f_write, write_profile);
    let n = chunks.max(1);
    let t_c = vec![c.runtime_s; n];
    let t_w = vec![w.runtime_s; n];
    let outcome = OverlapOutcome {
        compression_j: c.energy_j * n as f64,
        writing_j: w.energy_j * n as f64,
        sequential_s: (c.runtime_s + w.runtime_s) * n as f64,
        pipelined_s: overlap_makespan(&t_c, &t_w, queue_depth),
    };
    if lcpio_trace::collecting() {
        lcpio_trace::counter_add("pipeline.sim.compression_uj", (outcome.compression_j * 1e6) as u64);
        lcpio_trace::counter_add("pipeline.sim.writing_uj", (outcome.writing_j * 1e6) as u64);
    }
    outcome
}

/// Per-chunk generalization of [`simulate_pipeline`] for mixed-codec
/// plans: every chunk carries its own `(frequency, work profile)` pair
/// per stage, so the energy model attributes each chunk's compression
/// joules at *that chunk's* planned DVFS frequency rather than one
/// pipeline-wide setting.
///
/// The accounting invariant is unchanged: per-phase joules are summed
/// chunk by chunk — exactly the sequential totals — while the makespan
/// comes from [`overlap_makespan`] over the per-chunk stage times. With
/// every chunk identical this reduces to [`simulate_pipeline`] exactly
/// (asserted by a test).
pub fn simulate_pipeline_mixed(
    machine: &Machine,
    comp: &[(f64, WorkProfile)],
    write: &[(f64, WorkProfile)],
    queue_depth: usize,
) -> OverlapOutcome {
    assert_eq!(comp.len(), write.len(), "one write per compressed chunk");
    let _span = lcpio_trace::span("pipeline.simulate_mixed");
    let mut compression_j = 0.0;
    let mut writing_j = 0.0;
    let mut t_c = Vec::with_capacity(comp.len());
    let mut t_w = Vec::with_capacity(write.len());
    for (f, profile) in comp {
        let m = simulate(machine, *f, profile);
        compression_j += m.energy_j;
        t_c.push(m.runtime_s);
    }
    for (f, profile) in write {
        let m = simulate(machine, *f, profile);
        writing_j += m.energy_j;
        t_w.push(m.runtime_s);
    }
    OverlapOutcome {
        compression_j,
        writing_j,
        sequential_s: t_c.iter().sum::<f64>() + t_w.iter().sum::<f64>(),
        pipelined_s: overlap_makespan(&t_c, &t_w, queue_depth),
    }
}

/// One-stop characterization for the drivers: compress a sample once,
/// derive the per-chunk profiles, and return the overlapped outcome for a
/// full-size dump of `total_bytes`.
///
/// The sample characterization (field compression + cost-model mapping)
/// happens in the *caller* — this helper only scales it — so sweeps can
/// hoist the invariant work out of their frequency loops.
#[allow(clippy::too_many_arguments)]
pub fn scaled_overlap(
    machine: &Machine,
    f_comp: f64,
    f_write: f64,
    cost_model: &CostModel,
    compressor: Compressor,
    stats: &CodecStats,
    total_bytes: f64,
    queue_depth: usize,
) -> OverlapOutcome {
    // One "chunk" of the full-size dump is one sample-sized block; the
    // pipeline streams ceil(total/sample) of them.
    let sample_bytes = stats.input_bytes.max(1) as f64;
    let chunks = (total_bytes / sample_bytes).ceil().max(1.0) as usize;
    let comp_profile = cost_model.compression_profile(compressor, stats, 1.0);
    let compressed_chunk_bytes = sample_bytes / stats.ratio().max(1e-9);
    let write_profile = machine.nfs.write_profile(compressed_chunk_bytes);
    simulate_pipeline(machine, f_comp, f_write, &comp_profile, &write_profile, chunks, queue_depth)
}

/// Restart-side sibling of [`scaled_overlap`]: NFS fetch feeds chunk
/// decompression through the bounded prefetch queue.
///
/// The returned [`OverlapOutcome`] follows `readback`'s slot convention —
/// `compression_j` holds the **decompression** energy and `writing_j` the
/// **fetch** energy — so the overlapped per-phase joules line up with (and
/// sum exactly to) [`crate::readback::run_readback`]'s sequential report
/// while the makespan shrinks.
#[allow(clippy::too_many_arguments)]
pub fn scaled_restart(
    machine: &Machine,
    f_fetch: f64,
    f_decomp: f64,
    cost_model: &CostModel,
    compressor: Compressor,
    stats: &CodecStats,
    total_bytes: f64,
    queue_depth: usize,
) -> OverlapOutcome {
    let sample_bytes = stats.input_bytes.max(1) as f64;
    let chunks = (total_bytes / sample_bytes).ceil().max(1.0) as usize;
    let decomp_profile = cost_model.decompression_profile(compressor, stats, 1.0);
    let compressed_chunk_bytes = sample_bytes / stats.ratio().max(1e-9);
    let fetch_profile = machine.nfs.write_profile(compressed_chunk_bytes);
    // Stage 1 (fetch off NFS) feeds stage 2 (decode); the simulator's
    // stage-1/stage-2 slots are then swapped into readback's convention.
    let o = simulate_pipeline(
        machine,
        f_fetch,
        f_decomp,
        &fetch_profile,
        &decomp_profile,
        chunks,
        queue_depth,
    );
    OverlapOutcome {
        compression_j: o.writing_j,
        writing_j: o.compression_j,
        sequential_s: o.sequential_s,
        pipelined_s: o.pipelined_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcpio_powersim::Chip;

    fn field(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * 0.013).sin() * 40.0 + (i as f32 * 0.0021).cos()).collect()
    }

    fn cfg() -> PipelineConfig {
        PipelineConfig {
            chunk_elements: 1000,
            retry_backoff_ms: 0,
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn streaming_is_byte_identical_to_sequential() {
        let data = field(10_500);
        for depth in [1, 2, 4, 16] {
            for writers in [1, 2, 3] {
                let c = PipelineConfig { queue_depth: depth, writers, ..cfg() };
                let mut seq = VecSink::default();
                let mut par = VecSink::default();
                let a = run_sequential(&data, &c, &mut seq).expect("sequential");
                let b = run_streaming(&data, &c, &mut par).expect("streaming");
                assert_eq!(seq.bytes, par.bytes, "depth {depth} writers {writers}");
                assert_eq!(a.chunks, b.chunks);
                assert_eq!(a.bytes_out, b.bytes_out);
                assert_eq!(a.stats, b.stats);
            }
        }
    }

    #[test]
    fn decode_roundtrips_within_bound() {
        let data = field(7_321);
        let c = cfg();
        let mut sink = VecSink::default();
        run_streaming(&data, &c, &mut sink).expect("streaming");
        let back = decode_stream(&sink.bytes).expect("decode");
        assert_eq!(back.len(), data.len());
        let BoundSpec::Absolute(eb) = c.bound else { panic!("absolute bound") };
        for (a, b) in data.iter().zip(&back) {
            assert!((a - b).abs() as f64 <= eb * 1.0000001, "{a} vs {b}");
        }
    }

    #[test]
    fn compressed_stream_is_smaller() {
        let data = field(50_000);
        let mut sink = VecSink::default();
        let out = run_streaming(&data, &cfg(), &mut sink).expect("streaming");
        assert!(out.ratio() > 1.5, "ratio {}", out.ratio());
        assert_eq!(out.bytes_out as usize, sink.bytes.len());
    }

    #[test]
    fn validate_rejects_degenerate_knobs() {
        for bad in [
            PipelineConfig { queue_depth: 0, ..cfg() },
            PipelineConfig { writers: 0, ..cfg() },
            PipelineConfig { chunk_elements: 0, ..cfg() },
            PipelineConfig { max_write_attempts: 0, ..cfg() },
            PipelineConfig { max_compress_attempts: 0, ..cfg() },
        ] {
            let mut sink = VecSink::default();
            assert!(matches!(
                run_streaming(&[1.0; 8], &bad, &mut sink),
                Err(CoreError::Pipeline(_))
            ));
        }
    }

    #[test]
    fn empty_input_writes_header_only() {
        let mut sink = VecSink::default();
        let out = run_streaming(&[], &cfg(), &mut sink).expect("streaming");
        assert_eq!(out.chunks, 0);
        assert_eq!(sink.bytes.len(), 20);
        assert_eq!(decode_stream(&sink.bytes).expect("decode"), Vec::<f32>::new());
    }

    #[test]
    fn makespan_bounds() {
        // Overlap can never beat the slower stage, nor lose to the sum.
        let t_c = [3.0, 3.0, 3.0, 3.0];
        let t_w = [1.0, 1.0, 1.0, 1.0];
        let seq: f64 = 16.0;
        for depth in 1..6 {
            let m = overlap_makespan(&t_c, &t_w, depth);
            assert!(m >= 12.0 + 1.0 - 1e-12, "depth {depth}: {m}");
            assert!(m <= seq + 1e-12, "depth {depth}: {m}");
        }
        // Deep queue: compression streams, last write tail remains.
        assert!((overlap_makespan(&t_c, &t_w, 8) - 13.0).abs() < 1e-12);
    }

    #[test]
    fn makespan_backpressure_hurts_when_writer_is_slow() {
        let t_c = vec![1.0; 16];
        let t_w = vec![2.0; 16];
        let shallow = overlap_makespan(&t_c, &t_w, 1);
        let deep = overlap_makespan(&t_c, &t_w, 8);
        // Write-bound either way: lower bound is 1 + 32 = 33.
        assert!(deep >= 33.0 - 1e-12);
        assert!(shallow >= deep - 1e-12);
        // Depth 1 degenerates to sequential here (the next compression
        // waits for the previous write); depth ≥ 2 genuinely overlaps.
        assert!((shallow - 48.0).abs() < 1e-12);
        assert!((deep - 33.0).abs() < 1e-12);
        assert!(overlap_makespan(&t_c, &t_w, 2) < 48.0);
    }

    #[test]
    fn simulated_energy_matches_sequential_exactly() {
        let machine = Machine::for_chip(Chip::Broadwell);
        let comp = WorkProfile { compute_cycles: 3e9, memory_bytes: 16e9, ..Default::default() };
        let write = machine.nfs.write_profile(1e8);
        let o = simulate_pipeline(&machine, 2.0, 1.7, &comp, &write, 37, 4);
        let c = simulate(&machine, 2.0, &comp);
        let w = simulate(&machine, 1.7, &write);
        // Per-phase joules are per-chunk sums — overlap neither
        // double-counts nor drops energy.
        assert!((o.compression_j - c.energy_j * 37.0).abs() < 1e-9 * o.compression_j);
        assert!((o.writing_j - w.energy_j * 37.0).abs() < 1e-9 * o.writing_j);
        assert!((o.total_j() - (c.energy_j + w.energy_j) * 37.0).abs() < 1e-6);
        // The makespan is shorter than sequential but at least the longer
        // stage's busy time.
        assert!(o.pipelined_s < o.sequential_s);
        assert!(o.speedup() > 1.0);
    }

    #[test]
    fn deeper_queue_never_slows_the_simulated_pipeline() {
        let machine = Machine::for_chip(Chip::Broadwell);
        let comp = WorkProfile { compute_cycles: 3e9, memory_bytes: 16e9, ..Default::default() };
        let write = machine.nfs.write_profile(6e8);
        let mut last = f64::INFINITY;
        for depth in [1, 2, 4, 8] {
            let o = simulate_pipeline(&machine, 2.0, 2.0, &comp, &write, 64, depth);
            assert!(o.pipelined_s <= last + 1e-12, "depth {depth}");
            last = o.pipelined_s;
        }
    }

    #[test]
    fn injected_codec_failure_falls_back_to_raw() {
        let data = field(5_000);
        let mut c = cfg();
        // Chunk 2 fails compression on every attempt → raw frame.
        c.failure_plan.compress_failures =
            (0..c.max_compress_attempts).map(|a| (2usize, a)).collect();
        let mut seq = VecSink::default();
        let mut par = VecSink::default();
        let a = run_sequential(&data, &c, &mut seq).expect("sequential");
        let b = run_streaming(&data, &c, &mut par).expect("streaming");
        assert_eq!(a.raw_fallbacks, 1);
        assert_eq!(b.raw_fallbacks, 1);
        assert_eq!(seq.bytes, par.bytes, "fallback must stay deterministic");
        // Raw chunk decodes exactly.
        let back = decode_stream(&par.bytes).expect("decode");
        assert_eq!(&back[2000..3000], &data[2000..3000]);
    }

    #[test]
    fn transient_write_failure_is_retried() {
        let data = field(4_000);
        let mut c = cfg();
        c.failure_plan.write_failures = vec![(1, 0), (3, 0), (3, 1)];
        let mut clean = VecSink::default();
        run_sequential(&data, &cfg(), &mut clean).expect("clean");
        let mut par = VecSink::default();
        let out = run_streaming(&data, &c, &mut par).expect("retries succeed");
        assert_eq!(out.write_retries, 3);
        assert_eq!(clean.bytes, par.bytes);
    }

    #[test]
    fn exhausted_retries_surface_typed_error() {
        let data = field(4_000);
        let mut c = cfg();
        c.failure_plan.write_failures =
            (0..c.max_write_attempts).map(|a| (2usize, a)).collect();
        let mut sink = VecSink::default();
        let err = run_streaming(&data, &c, &mut sink).expect_err("chunk 2 must fail");
        match err {
            CoreError::Pipeline(p) => {
                assert_eq!(p.chunk, 2);
                assert_eq!(p.attempts, c.max_write_attempts);
            }
            other => panic!("wrong error {other:?}"),
        }
    }

    // -- restart (read→decompress) path --------------------------------

    fn stream_of(data: &[f32]) -> Vec<u8> {
        let mut sink = VecSink::default();
        run_sequential(data, &cfg(), &mut sink).expect("sequential");
        sink.bytes
    }

    fn restart_cfg() -> RestartConfig {
        RestartConfig { retry_backoff_ms: 0, ..RestartConfig::default() }
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn restart_matches_sequential_decode_at_every_depth_and_worker_count() {
        let data = field(10_500);
        let stream = stream_of(&data);
        let reference = decode_stream(&stream).expect("decode");
        let source = SliceSource::new(&stream);
        let (seq_vals, seq_out) =
            run_restart_sequential(&source, &restart_cfg()).expect("sequential restart");
        assert_eq!(bits(&seq_vals), bits(&reference));
        assert_eq!(seq_out.chunks, 11);
        for depth in [1, 2, 4, 16] {
            for workers in [1, 2, 3] {
                for readers in [1, 2] {
                    let c = RestartConfig {
                        queue_depth: depth,
                        readers,
                        workers,
                        ..restart_cfg()
                    };
                    let (vals, out) = run_restart(&source, &c).expect("restart");
                    assert_eq!(
                        bits(&vals),
                        bits(&reference),
                        "depth {depth} workers {workers} readers {readers}"
                    );
                    assert_eq!(out.chunks, seq_out.chunks);
                    assert_eq!(out.elements, data.len());
                    assert_eq!(out.bytes_in, stream.len() as u64);
                }
            }
        }
    }

    #[test]
    fn restart_decodes_raw_fallback_frames_exactly() {
        let data = field(5_000);
        let mut c = cfg();
        c.failure_plan.compress_failures =
            (0..c.max_compress_attempts).map(|a| (2usize, a)).collect();
        let mut sink = VecSink::default();
        run_sequential(&data, &c, &mut sink).expect("sequential");
        let source = SliceSource::new(&sink.bytes);
        let (vals, out) = run_restart(&source, &restart_cfg()).expect("restart");
        assert_eq!(out.raw_frames, 1);
        assert_eq!(&vals[2000..3000], &data[2000..3000]);
    }

    #[test]
    fn restart_validate_rejects_degenerate_knobs() {
        let stream = stream_of(&field(100));
        let source = SliceSource::new(&stream);
        for bad in [
            RestartConfig { queue_depth: 0, ..restart_cfg() },
            RestartConfig { readers: 0, ..restart_cfg() },
            RestartConfig { max_read_attempts: 0, ..restart_cfg() },
            RestartConfig { max_decode_attempts: 0, ..restart_cfg() },
        ] {
            assert!(matches!(run_restart(&source, &bad), Err(CoreError::Pipeline(_))));
        }
    }

    #[test]
    fn restart_of_header_only_stream_is_empty() {
        let stream = stream_of(&[]);
        assert_eq!(stream.len(), 20);
        let source = SliceSource::new(&stream);
        let (vals, out) = run_restart(&source, &restart_cfg()).expect("restart");
        assert!(vals.is_empty());
        assert_eq!(out.chunks, 0);
        assert_eq!(out.elements, 0);
    }

    #[test]
    fn forged_element_count_is_rejected_before_allocation() {
        // A 20-byte header promising u64::MAX elements must be refused by
        // the 512× capacity guard, not drive a giant Vec::with_capacity.
        let mut stream = header_bytes(false, u64::MAX, 1 << 18, 1, None);
        stream.extend_from_slice(&[FRAME_RAW, 4, 0, 0, 0, 0, 0, 0, 0]);
        let source = SliceSource::new(&stream);
        let err = scan_stream(&source).expect_err("forged header");
        assert!(err.to_string().contains("element count exceeds stream capacity"), "{err}");
        assert!(decode_stream(&stream).is_err());
        assert!(run_restart(&source, &restart_cfg()).is_err());
    }

    #[test]
    fn scan_stream_indexes_frames_without_touching_payloads() {
        let data = field(4_321);
        let stream = stream_of(&data);
        let layout = scan_stream(&SliceSource::new(&stream)).expect("scan");
        assert_eq!(layout.elements, data.len());
        assert_eq!(layout.chunk_elements, 1000);
        assert_eq!(layout.chunks(), 5);
    }

    #[test]
    fn file_source_restart_roundtrips() {
        let data = field(6_000);
        let stream = stream_of(&data);
        let path = std::env::temp_dir().join("lcpio-pipeline-filesource.lcs");
        std::fs::write(&path, &stream).expect("write stream");
        let source = FileSource::open(&path).expect("open");
        assert_eq!(ChunkSource::len(&source), stream.len() as u64);
        let (vals, _) = run_restart(&source, &restart_cfg()).expect("restart");
        assert_eq!(bits(&vals), bits(&decode_stream(&stream).expect("decode")));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn scaled_restart_conserves_sequential_energy() {
        use crate::records::Compressor;
        use crate::workmap::CostModel;
        let machine = Machine::for_chip(Chip::Broadwell);
        let cost_model = CostModel::default();
        let data = field(40_000);
        let enc = Compressor::Sz
            .codec()
            .compress(&data, &[data.len()], BoundSpec::Absolute(1e-3))
            .expect("compress");
        let total_bytes = 64.0 * enc.stats.input_bytes as f64;
        let o = scaled_restart(
            &machine, 1.7, 2.0, &cost_model, Compressor::Sz, &enc.stats, total_bytes, 4,
        );
        // Cross-check against the raw simulator: same chunks, same
        // profiles, per-phase joules identical (slots swapped).
        let sample_bytes = enc.stats.input_bytes as f64;
        let chunks = (total_bytes / sample_bytes).ceil() as usize;
        let decomp = cost_model.decompression_profile(Compressor::Sz, &enc.stats, 1.0);
        let fetch = machine.nfs.write_profile(sample_bytes / enc.stats.ratio());
        let raw = simulate_pipeline(&machine, 1.7, 2.0, &fetch, &decomp, chunks, 4);
        assert!((o.compression_j - raw.writing_j).abs() <= 1e-9 * o.compression_j);
        assert!((o.writing_j - raw.compression_j).abs() <= 1e-9 * o.writing_j);
        assert!((o.total_j() - raw.total_j()).abs() <= 1e-9 * o.total_j());
        assert!(o.pipelined_s < o.sequential_s);
        assert!(o.speedup() > 1.0);
    }

    // -- LCW1 wire format and incremental streamed restart --------------

    fn wire_cfg() -> PipelineConfig {
        PipelineConfig { wire_format: true, ..cfg() }
    }

    fn wire_stream_of(data: &[f32]) -> Vec<u8> {
        let mut sink = VecSink::default();
        run_sequential(data, &wire_cfg(), &mut sink).expect("sequential wire");
        sink.bytes
    }

    #[test]
    fn wire_format_streaming_is_byte_identical_to_sequential() {
        let data = field(10_500);
        for depth in [1, 4] {
            for writers in [1, 3] {
                let c = PipelineConfig { queue_depth: depth, writers, ..wire_cfg() };
                let mut seq = VecSink::default();
                let mut par = VecSink::default();
                run_sequential(&data, &c, &mut seq).expect("sequential");
                run_streaming(&data, &c, &mut par).expect("streaming");
                assert_eq!(seq.bytes, par.bytes, "depth {depth} writers {writers}");
            }
        }
    }

    #[test]
    fn wire_and_legacy_streams_decode_identically() {
        let data = field(7_321);
        let legacy = stream_of(&data);
        let wire = wire_stream_of(&data);
        assert_eq!(&legacy[..4], &STREAM_MAGIC);
        assert_eq!(&wire[..4], &lcpio_wire::MAGIC);
        let a = decode_stream(&legacy).expect("decode legacy");
        let b = decode_stream(&wire).expect("decode wire");
        assert_eq!(bits(&a), bits(&b));
        // Both scans agree on the geometry; only the framing differs.
        let la = scan_stream(&SliceSource::new(&legacy)).expect("scan legacy");
        let lb = scan_stream(&SliceSource::new(&wire)).expect("scan wire");
        assert_eq!(la.elements, lb.elements);
        assert_eq!(la.chunk_elements, lb.chunk_elements);
        assert_eq!(la.chunks(), lb.chunks());
    }

    #[test]
    fn restart_decodes_wire_streams_like_legacy() {
        let data = field(10_500);
        let reference = decode_stream(&stream_of(&data)).expect("decode legacy");
        let wire = wire_stream_of(&data);
        let source = SliceSource::new(&wire);
        let (seq_vals, _) = run_restart_sequential(&source, &restart_cfg()).expect("sequential");
        assert_eq!(bits(&seq_vals), bits(&reference));
        let c = RestartConfig { queue_depth: 2, workers: 2, ..restart_cfg() };
        let (vals, out) = run_restart(&source, &c).expect("restart");
        assert_eq!(bits(&vals), bits(&reference));
        assert_eq!(out.elements, data.len());
        assert_eq!(out.bytes_in, wire.len() as u64);
    }

    #[test]
    fn streamed_restart_matches_positioned_restart_on_both_formats() {
        let data = field(10_500);
        for stream in [stream_of(&data), wire_stream_of(&data)] {
            let reference = decode_stream(&stream).expect("decode");
            let layout = scan_stream(&SliceSource::new(&stream)).expect("scan");
            let max_frame = layout.max_frame_len();
            for depth in [1, 4] {
                for workers in [1, 3] {
                    let c = RestartConfig { queue_depth: depth, workers, ..restart_cfg() };
                    let mut rd: &[u8] = &stream;
                    let (vals, out) = run_restart_streamed(&mut rd, &c).expect("streamed");
                    assert_eq!(bits(&vals), bits(&reference), "depth {depth} workers {workers}");
                    assert_eq!(out.chunks, layout.chunks());
                    assert_eq!(out.elements, data.len());
                    // Peak buffering is bounded by one frame plus one
                    // read-buffer fill plus the header — never the whole
                    // container.
                    assert!(out.peak_buffered_bytes > 0);
                    assert!(
                        out.peak_buffered_bytes
                            <= max_frame + STREAM_READ_BYTES + lcpio_wire::MAX_HEADER_LEN,
                        "peak {} vs frame {max_frame}",
                        out.peak_buffered_bytes
                    );
                }
            }
        }
    }

    #[test]
    fn streamed_restart_of_empty_streams_is_empty() {
        for stream in [stream_of(&[]), wire_stream_of(&[])] {
            let mut rd: &[u8] = &stream;
            let (vals, out) = run_restart_streamed(&mut rd, &restart_cfg()).expect("streamed");
            assert!(vals.is_empty());
            assert_eq!(out.chunks, 0);
        }
    }

    #[test]
    fn streamed_restart_rejects_truncation_at_every_offset() {
        let data = field(2_500);
        for stream in [stream_of(&data), wire_stream_of(&data)] {
            for cut in 0..stream.len() {
                let mut rd: &[u8] = &stream[..cut];
                assert!(
                    run_restart_streamed(&mut rd, &restart_cfg()).is_err(),
                    "cut at {cut}/{} decoded",
                    stream.len()
                );
            }
        }
    }

    #[test]
    fn wire_scan_rejects_forged_element_count() {
        // A wire header claiming u64::MAX elements over a tiny payload
        // must trip the 512× capacity guard during the scan.
        let mut stream = header_bytes(true, u64::MAX, 1 << 18, 1, None);
        let frame = frame_bytes(true, FRAME_RAW, &[0u8; 4]);
        stream.extend_from_slice(&frame);
        let err = scan_stream(&SliceSource::new(&stream)).expect_err("forged header");
        assert!(err.to_string().contains("element count exceeds stream capacity"), "{err}");
        assert!(decode_stream(&stream).is_err());
    }

    #[test]
    fn wire_scan_rejects_foreign_container_and_bad_frame_kind() {
        // An LCW1 envelope whose container id is not LCS1 is not a
        // streaming container.
        let env = lcpio_wire::EnvelopeBuilder::new(*b"SZL1")
            .params(&lcs_params(0, 1))
            .build(&[b"xxxx"]);
        assert!(scan_stream(&SliceSource::new(&env)).is_err());
        // A frame whose kind byte is neither compressed nor raw is
        // rejected during the scan, before any decode work.
        let mut bad = header_bytes(true, 4, 4, 1, None);
        bad.extend_from_slice(&frame_bytes(true, 7, &[0u8; 16]));
        let err = scan_stream(&SliceSource::new(&bad)).expect_err("bad kind");
        assert!(err.to_string().contains("unknown frame tag"), "{err}");
    }

    // -- per-chunk policy layer (mixed-codec containers) -----------------

    fn adaptive_cfg(chunk_elements: usize) -> PipelineConfig {
        PipelineConfig {
            chunk_elements,
            wire_format: true,
            policy: PolicyKind::Adaptive,
            retry_backoff_ms: 0,
            ..PipelineConfig::default()
        }
    }

    fn mixed_stream(chunk_elements: usize, chunks: usize) -> (Vec<f32>, Vec<u8>) {
        let data = crate::policy::interleaved_cesm_hacc(chunk_elements, chunks, 20220530);
        let mut sink = VecSink::default();
        run_sequential(&data, &adaptive_cfg(chunk_elements), &mut sink).expect("sequential");
        (data, sink.bytes)
    }

    #[test]
    fn adaptive_policy_emits_mixed_codec_container_and_roundtrips() {
        let (data, stream) = mixed_stream(4096, 6);
        let layout = scan_stream(&SliceSource::new(&stream)).expect("scan");
        let tags = layout.codec_tags().expect("adaptive wire stream carries tags").to_vec();
        assert_eq!(tags.len(), 6);
        assert!(tags.contains(&CodecId::Sz.as_u8()), "no SZ chunk: {tags:?}");
        assert!(tags.contains(&CodecId::Zfp.as_u8()), "no ZFP chunk: {tags:?}");
        let back = decode_stream(&stream).expect("decode");
        assert_eq!(back.len(), data.len());
        for (a, b) in data.iter().zip(&back) {
            assert!((a - b).abs() as f64 <= 1e-3 * 1.0000001, "{a} vs {b}");
        }
    }

    #[test]
    fn mixed_codec_streaming_is_byte_identical_at_every_knob() {
        let data = crate::policy::interleaved_cesm_hacc(2048, 6, 7);
        for policy in [PolicyKind::Heuristic, PolicyKind::Adaptive] {
            for wire in [false, true] {
                let base = PipelineConfig {
                    chunk_elements: 2048,
                    wire_format: wire,
                    policy,
                    retry_backoff_ms: 0,
                    ..PipelineConfig::default()
                };
                let mut seq = VecSink::default();
                let a = run_sequential(&data, &base, &mut seq).expect("sequential");
                assert_eq!(a.codec_chunks.iter().sum::<usize>(), a.chunks);
                for (threads, writers) in [(1, 1), (2, 3), (0, 2)] {
                    let c = PipelineConfig {
                        compress_threads: threads,
                        writers,
                        ..base.clone()
                    };
                    let mut par = VecSink::default();
                    let b = run_streaming(&data, &c, &mut par).expect("streaming");
                    assert_eq!(
                        seq.bytes, par.bytes,
                        "{policy:?} wire={wire} threads={threads} writers={writers}"
                    );
                    assert_eq!(a.codec_chunks, b.codec_chunks);
                }
            }
        }
    }

    #[test]
    fn mixed_codec_restart_paths_agree() {
        let (data, stream) = mixed_stream(4096, 6);
        let reference = decode_stream(&stream).expect("decode");
        assert_eq!(reference.len(), data.len());
        let source = SliceSource::new(&stream);
        let (a, _) = run_restart_sequential(&source, &restart_cfg()).expect("sequential restart");
        assert_eq!(bits(&a), bits(&reference));
        let c = RestartConfig { queue_depth: 2, workers: 3, ..restart_cfg() };
        let (b, _) = run_restart(&source, &c).expect("restart");
        assert_eq!(bits(&b), bits(&reference));
        let mut rd: &[u8] = &stream;
        let (d, _) = run_restart_streamed(&mut rd, &c).expect("streamed restart");
        assert_eq!(bits(&d), bits(&reference));
    }

    #[test]
    fn mixed_codec_truncation_rejected_at_every_offset() {
        let (_, stream) = mixed_stream(1024, 2);
        for cut in 0..stream.len() {
            let mut rd: &[u8] = &stream[..cut];
            assert!(
                run_restart_streamed(&mut rd, &restart_cfg()).is_err(),
                "cut at {cut}/{} decoded",
                stream.len()
            );
        }
    }

    #[test]
    fn legacy_layout_supports_mixed_codecs_without_tags() {
        let data = crate::policy::interleaved_cesm_hacc(4096, 4, 11);
        let c = PipelineConfig {
            chunk_elements: 4096,
            policy: PolicyKind::Adaptive,
            retry_backoff_ms: 0,
            ..PipelineConfig::default()
        };
        let mut sink = VecSink::default();
        let out = run_sequential(&data, &c, &mut sink).expect("sequential");
        assert_eq!(out.codec_chunks.iter().sum::<usize>(), out.chunks);
        assert!(out.plan_s > 0.0);
        // Legacy frames are self-describing (magic-sniffed), so the mixed
        // container needs no tag TLV — and the layout reports none.
        let layout = scan_stream(&SliceSource::new(&sink.bytes)).expect("scan");
        assert!(layout.codec_tags().is_none());
        assert_eq!(decode_stream(&sink.bytes).expect("decode").len(), data.len());
    }

    #[test]
    fn fixed_policy_wire_stream_carries_no_codec_tags() {
        let stream = wire_stream_of(&field(2_500));
        let layout = scan_stream(&SliceSource::new(&stream)).expect("scan");
        assert!(layout.codec_tags().is_none());
    }

    fn tagged_envelope(tags: &[u8], frames: &[&[u8]]) -> Vec<u8> {
        lcpio_wire::EnvelopeBuilder::new(STREAM_MAGIC)
            .params(&lcs_params(600, 600))
            .codec_tags(tags)
            .build(frames)
    }

    #[test]
    fn forged_codec_tag_is_rejected_by_scan_and_streamed_paths() {
        let data = field(600);
        let enc = Compressor::Sz
            .codec()
            .compress(&data, &[600], BoundSpec::Absolute(1e-3))
            .expect("compress");
        let mut payload = vec![FRAME_COMPRESSED];
        payload.extend_from_slice(&enc.bytes);

        // Tag claims ZFP over an SZ payload: typed error, both paths.
        let forged = tagged_envelope(&[CodecId::Zfp.as_u8()], &[payload.as_slice()]);
        let err = scan_stream(&SliceSource::new(&forged)).expect_err("forged tag");
        assert!(err.to_string().contains("codec tag mismatch"), "{err}");
        let mut rd: &[u8] = &forged;
        let err = run_restart_streamed(&mut rd, &restart_cfg()).expect_err("forged tag");
        assert!(err.to_string().contains("codec tag mismatch"), "{err}");

        // A raw tag over a compressed frame is forged too.
        let raw_tag = tagged_envelope(&[CodecId::Raw.as_u8()], &[payload.as_slice()]);
        assert!(scan_stream(&SliceSource::new(&raw_tag)).is_err());

        // The honest tag decodes.
        let honest = tagged_envelope(&[CodecId::Sz.as_u8()], &[payload.as_slice()]);
        assert_eq!(decode_stream(&honest).expect("decode").len(), 600);

        // A raw frame is accepted under any tag (fallback keeps the
        // planned codec's tag).
        let mut raw_payload = vec![FRAME_RAW];
        for v in &data {
            raw_payload.extend_from_slice(&v.to_le_bytes());
        }
        let fallback = tagged_envelope(&[CodecId::Zfp.as_u8()], &[raw_payload.as_slice()]);
        assert_eq!(decode_stream(&fallback).expect("decode"), data);
    }

    #[test]
    fn unknown_codec_id_in_tags_is_a_typed_error() {
        let data = field(600);
        let enc = Compressor::Sz
            .codec()
            .compress(&data, &[600], BoundSpec::Absolute(1e-3))
            .expect("compress");
        let mut payload = vec![FRAME_COMPRESSED];
        payload.extend_from_slice(&enc.bytes);
        let bad = tagged_envelope(&[9], &[payload.as_slice()]);
        let err = scan_stream(&SliceSource::new(&bad)).expect_err("unknown id");
        assert!(err.to_string().contains("unknown codec id"), "{err}");
        let mut rd: &[u8] = &bad;
        assert!(run_restart_streamed(&mut rd, &restart_cfg()).is_err());
        // Wrong tag count never reaches the codec check: the envelope
        // accessor rejects the shape.
        let short = tagged_envelope(&[1, 2], &[payload.as_slice()]);
        let err = scan_stream(&SliceSource::new(&short)).expect_err("shape");
        assert!(err.to_string().contains("wire envelope"), "{err}");
    }

    #[test]
    fn mixed_simulation_reduces_to_uniform_and_conserves_energy() {
        let machine = Machine::for_chip(Chip::Broadwell);
        let comp = WorkProfile { compute_cycles: 3e9, memory_bytes: 16e9, ..Default::default() };
        let write = machine.nfs.write_profile(1e8);
        // Uniform plans: the mixed simulator must equal simulate_pipeline.
        let uniform = simulate_pipeline(&machine, 2.0, 1.7, &comp, &write, 16, 4);
        let mixed = simulate_pipeline_mixed(
            &machine,
            &vec![(2.0, comp); 16],
            &vec![(1.7, write); 16],
            4,
        );
        assert!((uniform.compression_j - mixed.compression_j).abs() < 1e-9);
        assert!((uniform.writing_j - mixed.writing_j).abs() < 1e-9);
        assert!((uniform.pipelined_s - mixed.pipelined_s).abs() < 1e-12);
        // Per-chunk frequencies: joules still sum chunk by chunk.
        let comps: Vec<(f64, WorkProfile)> =
            (0..16).map(|k| (if k % 2 == 0 { 2.0 } else { 1.2 }, comp)).collect();
        let writes = vec![(1.7, write); 16];
        let o = simulate_pipeline_mixed(&machine, &comps, &writes, 4);
        let expect_j: f64 = comps.iter().map(|(f, p)| simulate(&machine, *f, p).energy_j).sum();
        assert!((o.compression_j - expect_j).abs() < 1e-9 * expect_j.max(1.0));
        assert!(o.pipelined_s <= o.sequential_s + 1e-12);
    }
}
