//! Table III: the data slices each power model is regressed on.
//!
//! The paper fits five compression models — pooled, per-compressor, and
//! per-chip — and three transit models. Slicing the same sweep different
//! ways is what reveals that *hardware* dominates the fit quality (§IV-A:
//! "power consumption is less dependent on the choice of lossy
//! compressor").

use crate::records::{CompressionRecord, Compressor, TransitRecord};
use lcpio_powersim::Chip;
use serde::{Deserialize, Serialize};

/// The five compression model slices of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CompressionSlice {
    /// SZ + ZFP on Broadwell + Skylake.
    Total,
    /// SZ on both chips.
    Sz,
    /// ZFP on both chips.
    Zfp,
    /// Both compressors on Broadwell.
    Broadwell,
    /// Both compressors on Skylake.
    Skylake,
}

impl CompressionSlice {
    /// All five, in the paper's Table III/IV order.
    pub const ALL: [CompressionSlice; 5] = [
        CompressionSlice::Total,
        CompressionSlice::Sz,
        CompressionSlice::Zfp,
        CompressionSlice::Broadwell,
        CompressionSlice::Skylake,
    ];

    /// Row label as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            CompressionSlice::Total => "Total",
            CompressionSlice::Sz => "SZ",
            CompressionSlice::Zfp => "ZFP",
            CompressionSlice::Broadwell => "Broadwell",
            CompressionSlice::Skylake => "Skylake",
        }
    }

    /// Whether a record belongs to this slice.
    pub fn contains(self, r: &CompressionRecord) -> bool {
        match self {
            CompressionSlice::Total => true,
            CompressionSlice::Sz => r.compressor == Compressor::Sz,
            CompressionSlice::Zfp => r.compressor == Compressor::Zfp,
            CompressionSlice::Broadwell => r.chip == Chip::Broadwell,
            CompressionSlice::Skylake => r.chip == Chip::Skylake,
        }
    }

    /// Filter a sweep down to this slice.
    pub fn filter(self, recs: &[CompressionRecord]) -> Vec<&CompressionRecord> {
        recs.iter().filter(|r| self.contains(r)).collect()
    }
}

/// The three transit model slices (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransitSlice {
    /// Both chips pooled.
    Total,
    /// Broadwell only.
    Broadwell,
    /// Skylake only.
    Skylake,
}

impl TransitSlice {
    /// All three, in Table V order.
    pub const ALL: [TransitSlice; 3] =
        [TransitSlice::Total, TransitSlice::Broadwell, TransitSlice::Skylake];

    /// Row label as printed in the paper.
    pub fn name(self) -> &'static str {
        match self {
            TransitSlice::Total => "Total",
            TransitSlice::Broadwell => "Broadwell",
            TransitSlice::Skylake => "Skylake",
        }
    }

    /// Whether a record belongs to this slice.
    pub fn contains(self, r: &TransitRecord) -> bool {
        match self {
            TransitSlice::Total => true,
            TransitSlice::Broadwell => r.chip == Chip::Broadwell,
            TransitSlice::Skylake => r.chip == Chip::Skylake,
        }
    }

    /// Filter a sweep down to this slice.
    pub fn filter(self, recs: &[TransitRecord]) -> Vec<&TransitRecord> {
        recs.iter().filter(|r| self.contains(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcpio_datagen::Dataset;

    fn rec(chip: Chip, comp: Compressor) -> CompressionRecord {
        CompressionRecord {
            chip,
            compressor: comp,
            dataset: Dataset::Nyx,
            error_bound: 1e-3,
            f_ghz: 1.0,
            power_w: 1.0,
            runtime_s: 1.0,
            energy_j: 1.0,
            power_ci95_w: 0.0,
            ratio: 2.0,
        }
    }

    #[test]
    fn slice_membership_matches_table3() {
        let bd_sz = rec(Chip::Broadwell, Compressor::Sz);
        let sk_zfp = rec(Chip::Skylake, Compressor::Zfp);
        assert!(CompressionSlice::Total.contains(&bd_sz));
        assert!(CompressionSlice::Total.contains(&sk_zfp));
        assert!(CompressionSlice::Sz.contains(&bd_sz));
        assert!(!CompressionSlice::Sz.contains(&sk_zfp));
        assert!(CompressionSlice::Zfp.contains(&sk_zfp));
        assert!(CompressionSlice::Broadwell.contains(&bd_sz));
        assert!(!CompressionSlice::Broadwell.contains(&sk_zfp));
        assert!(CompressionSlice::Skylake.contains(&sk_zfp));
    }

    #[test]
    fn filters_partition_correctly() {
        let recs = vec![
            rec(Chip::Broadwell, Compressor::Sz),
            rec(Chip::Broadwell, Compressor::Zfp),
            rec(Chip::Skylake, Compressor::Sz),
            rec(Chip::Skylake, Compressor::Zfp),
        ];
        assert_eq!(CompressionSlice::Total.filter(&recs).len(), 4);
        assert_eq!(CompressionSlice::Sz.filter(&recs).len(), 2);
        assert_eq!(CompressionSlice::Broadwell.filter(&recs).len(), 2);
        // SZ ∪ ZFP = Total; Broadwell ∪ Skylake = Total.
        assert_eq!(
            CompressionSlice::Sz.filter(&recs).len() + CompressionSlice::Zfp.filter(&recs).len(),
            4
        );
    }

    #[test]
    fn table_order_names() {
        let names: Vec<_> = CompressionSlice::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["Total", "SZ", "ZFP", "Broadwell", "Skylake"]);
        let tnames: Vec<_> = TransitSlice::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(tnames, vec!["Total", "Broadwell", "Skylake"]);
    }
}
