//! Measurement records: the rows every table and figure is built from.

use lcpio_datagen::Dataset;
use lcpio_powersim::Chip;
use serde::{Deserialize, Serialize};

/// Which lossy compressor produced a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Compressor {
    /// The SZ-style prediction/quantization codec.
    Sz,
    /// The ZFP-style transform codec.
    Zfp,
}

impl Compressor {
    /// Both compressors, in the paper's order.
    pub const ALL: [Compressor; 2] = [Compressor::Sz, Compressor::Zfp];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            Compressor::Sz => "SZ",
            Compressor::Zfp => "ZFP",
        }
    }

    /// The registry-backed [`Codec`](lcpio_codec::Codec) implementing this
    /// compressor — the drivers' single dispatch point.
    pub fn codec(self) -> &'static dyn lcpio_codec::Codec {
        lcpio_codec::registry()
            .by_name(self.name())
            .expect("every built-in compressor is registered")
    }
}

/// One averaged measurement of a compression job at one frequency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompressionRecord {
    /// CPU architecture.
    pub chip: Chip,
    /// Compressor used.
    pub compressor: Compressor,
    /// Dataset compressed.
    pub dataset: Dataset,
    /// Absolute error bound.
    pub error_bound: f64,
    /// Core clock (GHz).
    pub f_ghz: f64,
    /// Mean average power (W) over the repetitions.
    pub power_w: f64,
    /// Mean runtime (s) for the full-size field.
    pub runtime_s: f64,
    /// Mean energy (J) for the full-size field.
    pub energy_j: f64,
    /// 95% CI half-width on power (W).
    pub power_ci95_w: f64,
    /// Compression ratio achieved on the sample.
    pub ratio: f64,
}

/// One averaged measurement of an NFS write at one frequency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransitRecord {
    /// CPU architecture.
    pub chip: Chip,
    /// Payload size (bytes).
    pub bytes: f64,
    /// Core clock (GHz).
    pub f_ghz: f64,
    /// Mean average power (W).
    pub power_w: f64,
    /// Mean runtime (s).
    pub runtime_s: f64,
    /// Mean energy (J).
    pub energy_j: f64,
    /// 95% CI half-width on power (W).
    pub power_ci95_w: f64,
}

/// Identity of one compression measurement *group*: all frequencies of the
/// same (chip, compressor, dataset, error bound) share a scaling baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupKey {
    /// CPU architecture.
    pub chip: Chip,
    /// Compressor.
    pub compressor: Compressor,
    /// Dataset.
    pub dataset: Dataset,
    /// Error bound.
    pub error_bound: f64,
}

impl CompressionRecord {
    /// Group key of this record.
    pub fn group(&self) -> GroupKey {
        GroupKey {
            chip: self.chip,
            compressor: self.compressor,
            dataset: self.dataset,
            error_bound: self.error_bound,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compressor_names() {
        assert_eq!(Compressor::Sz.name(), "SZ");
        assert_eq!(Compressor::Zfp.name(), "ZFP");
        assert_eq!(Compressor::ALL.len(), 2);
    }

    #[test]
    fn every_compressor_resolves_to_a_codec() {
        for comp in Compressor::ALL {
            assert_eq!(comp.codec().name(), comp.name().to_ascii_lowercase());
        }
    }

    #[test]
    fn group_key_ignores_frequency() {
        let mk = |f: f64| CompressionRecord {
            chip: Chip::Broadwell,
            compressor: Compressor::Sz,
            dataset: Dataset::Nyx,
            error_bound: 1e-3,
            f_ghz: f,
            power_w: 10.0,
            runtime_s: 1.0,
            energy_j: 10.0,
            power_ci95_w: 0.1,
            ratio: 5.0,
        };
        assert_eq!(mk(0.8).group(), mk(2.0).group());
    }
}
