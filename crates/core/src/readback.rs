//! Read-side workflow energy (extension).
//!
//! The paper models the *write* path: compress → dump to NFS. Scientific
//! workflows also pay the mirror-image cost at analysis time: fetch the
//! compressed file from NFS and decompress it. This module extends the
//! Eqn-3 treatment to that read path, reusing the paper's observation that
//! I/O phases tolerate lower clocks.

use crate::datadump::PhaseEnergy;
use crate::pipeline::{scaled_restart, OverlapOutcome};
use crate::records::Compressor;
use crate::tuning::TuningRule;
use crate::workmap::CostModel;
use lcpio_datagen::nyx;
use lcpio_powersim::{simulate, Chip, Machine};
use lcpio_codec::BoundSpec;
use serde::{Deserialize, Serialize};

/// Configuration of the read-back experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReadbackConfig {
    /// Uncompressed volume being read back (bytes).
    pub total_bytes: f64,
    /// Error bound the data was compressed at.
    pub error_bound: f64,
    /// Chip performing the read + decompress.
    pub chip: Chip,
    /// Compressor that produced the file.
    pub compressor: Compressor,
    /// NYX sample cube side used to characterize the work.
    pub sample_side: usize,
    /// RNG seed.
    pub seed: u64,
    /// Tuning rule: the *writing* fraction is applied to the network read,
    /// the *compression* fraction to decompression.
    pub rule: TuningRule,
    /// Cost-model constants.
    pub cost_model: CostModel,
    /// Prefetch-queue depth of the overlapped restart pipeline whose
    /// outcome is reported alongside the sequential phases.
    pub queue_depth: usize,
}

impl ReadbackConfig {
    /// 512 GB read-back mirroring the paper's §VI-B dump.
    pub fn paper() -> Self {
        ReadbackConfig {
            total_bytes: 512e9,
            error_bound: 1e-3,
            chip: Chip::Broadwell,
            compressor: Compressor::Sz,
            sample_side: 64,
            seed: 0x0EAD,
            rule: TuningRule::PAPER,
            cost_model: CostModel::default(),
            queue_depth: 4,
        }
    }

    /// Small settings for tests.
    pub fn quick() -> Self {
        ReadbackConfig { sample_side: 24, ..Self::paper() }
    }
}

/// Result of the read-back study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReadbackResult {
    /// Compression ratio of the stored file.
    pub ratio: f64,
    /// Base-clock energies (fetch = "writing" slot, decompress =
    /// "compression" slot of [`PhaseEnergy`]).
    pub base: PhaseEnergy,
    /// Tuned energies.
    pub tuned: PhaseEnergy,
    /// Base-clock overlapped restart (fetch feeds decode through the
    /// bounded prefetch queue): per-phase joules equal `base`'s, wall
    /// time shrinks.
    pub base_overlap: OverlapOutcome,
    /// Tuned overlapped restart.
    pub tuned_overlap: OverlapOutcome,
}

impl ReadbackResult {
    /// Fractional energy savings from tuning.
    pub fn savings(&self) -> f64 {
        1.0 - self.tuned.total_j() / self.base.total_j()
    }
}

/// Run the read-back experiment.
pub fn run_readback(cfg: &ReadbackConfig) -> ReadbackResult {
    let machine = Machine::for_chip(cfg.chip);
    let fmax = machine.cpu.f_max_ghz;
    let f_fetch = machine.cpu.snap(cfg.rule.writing_fraction * fmax);
    let f_decomp = machine.cpu.snap(cfg.rule.compression_fraction * fmax);

    let field = nyx::velocity_x(cfg.sample_side, cfg.seed);
    let dims: Vec<usize> = field.dims().extents().to_vec();
    let scale_factor = cfg.total_bytes / field.sample_bytes() as f64;

    let out = cfg
        .compressor
        .codec()
        .compress(&field.data, &dims, BoundSpec::Absolute(cfg.error_bound))
        .expect("NYX samples compress");
    let decomp_profile =
        cfg.cost_model.decompression_profile(cfg.compressor, &out.stats, scale_factor);
    let ratio = out.stats.ratio();
    let compressed_bytes = cfg.total_bytes / ratio;
    // Reading from NFS exercises the same single-core copy path as writing.
    let fetch_profile = machine.nfs.write_profile(compressed_bytes);

    let energy_at = |ff: f64, fd: f64| -> PhaseEnergy {
        let fetch = simulate(&machine, ff, &fetch_profile);
        let dec = simulate(&machine, fd, &decomp_profile);
        PhaseEnergy {
            compression_j: dec.energy_j,
            writing_j: fetch.energy_j,
            compression_s: dec.runtime_s,
            writing_s: fetch.runtime_s,
        }
    };
    let overlap_at = |ff: f64, fd: f64| -> OverlapOutcome {
        scaled_restart(
            &machine,
            ff,
            fd,
            &cfg.cost_model,
            cfg.compressor,
            &out.stats,
            cfg.total_bytes,
            cfg.queue_depth,
        )
    };
    ReadbackResult {
        ratio,
        base: energy_at(fmax, fmax),
        tuned: energy_at(f_fetch, f_decomp),
        base_overlap: overlap_at(fmax, fmax),
        tuned_overlap: overlap_at(f_fetch, f_decomp),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readback_tuning_saves_energy() {
        let r = run_readback(&ReadbackConfig::quick());
        assert!(r.savings() > 0.0, "savings {}", r.savings());
        assert!(r.ratio > 1.0);
    }

    #[test]
    fn decompression_is_cheaper_than_compression_side() {
        use crate::datadump::{run_data_dump, DataDumpConfig};
        let rb = run_readback(&ReadbackConfig::quick());
        let mut dump_cfg = DataDumpConfig::quick();
        dump_cfg.error_bounds = vec![1e-3];
        let (rows, _) = run_data_dump(&dump_cfg).expect("quick dump runs");
        assert!(
            rb.base.compression_j < rows[0].base.compression_j,
            "decompress {} !< compress {}",
            rb.base.compression_j,
            rows[0].base.compression_j
        );
    }

    #[test]
    fn overlapped_restart_conserves_phase_energy_and_shrinks_wall_time() {
        let r = run_readback(&ReadbackConfig::quick());
        let rel = |a: f64, b: f64| (a - b).abs() / b;
        for (seq, ov) in [(r.base, r.base_overlap), (r.tuned, r.tuned_overlap)] {
            // Same joules per phase as the sequential accounting (the
            // chunk-count ceiling perturbs at ~1e-7), shorter makespan.
            assert!(rel(ov.compression_j, seq.compression_j) < 1e-4);
            assert!(rel(ov.writing_j, seq.writing_j) < 1e-4);
            assert!(rel(ov.sequential_s, seq.compression_s + seq.writing_s) < 1e-4);
            assert!(ov.pipelined_s < ov.sequential_s);
            assert!(ov.speedup() > 1.0);
        }
    }

    #[test]
    fn zfp_readback_also_saves() {
        let cfg = ReadbackConfig { compressor: Compressor::Zfp, ..ReadbackConfig::quick() };
        let r = run_readback(&cfg);
        assert!(r.savings() > 0.0);
    }
}
