//! Read-side workflow energy (extension).
//!
//! The paper models the *write* path: compress → dump to NFS. Scientific
//! workflows also pay the mirror-image cost at analysis time: fetch the
//! compressed file from NFS and decompress it. This module extends the
//! Eqn-3 treatment to that read path, reusing the paper's observation that
//! I/O phases tolerate lower clocks.

use crate::datadump::PhaseEnergy;
use crate::pipeline::{scaled_restart, simulate_pipeline_mixed, OverlapOutcome};
use crate::policy::{build_policy, compressor_of, PolicyKind};
use crate::records::Compressor;
use crate::tuning::TuningRule;
use crate::workmap::CostModel;
use lcpio_datagen::nyx;
use lcpio_powersim::{simulate, Chip, Machine};
use lcpio_codec::BoundSpec;
use serde::{Deserialize, Serialize};

/// Configuration of the read-back experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReadbackConfig {
    /// Uncompressed volume being read back (bytes).
    pub total_bytes: f64,
    /// Error bound the data was compressed at.
    pub error_bound: f64,
    /// Chip performing the read + decompress.
    pub chip: Chip,
    /// Compressor that produced the file.
    pub compressor: Compressor,
    /// NYX sample cube side used to characterize the work.
    pub sample_side: usize,
    /// RNG seed.
    pub seed: u64,
    /// Tuning rule: the *writing* fraction is applied to the network read,
    /// the *compression* fraction to decompression.
    pub rule: TuningRule,
    /// Cost-model constants.
    pub cost_model: CostModel,
    /// Prefetch-queue depth of the overlapped restart pipeline whose
    /// outcome is reported alongside the sequential phases.
    pub queue_depth: usize,
    /// Per-chunk policy the restart is re-priced under
    /// ([`ReadbackResult::policy_overlap`]): the policy plans the sample
    /// chunk's codec and DVFS frequency, and the energy model attributes
    /// the decode phase at the plan's frequency. [`PolicyKind::Fixed`]
    /// reproduces the tuned overlap exactly.
    pub policy: PolicyKind,
}

impl ReadbackConfig {
    /// 512 GB read-back mirroring the paper's §VI-B dump.
    pub fn paper() -> Self {
        ReadbackConfig {
            total_bytes: 512e9,
            error_bound: 1e-3,
            chip: Chip::Broadwell,
            compressor: Compressor::Sz,
            sample_side: 64,
            seed: 0x0EAD,
            rule: TuningRule::PAPER,
            cost_model: CostModel::default(),
            queue_depth: 4,
            policy: PolicyKind::Fixed,
        }
    }

    /// Small settings for tests.
    pub fn quick() -> Self {
        ReadbackConfig { sample_side: 24, ..Self::paper() }
    }
}

/// Result of the read-back study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReadbackResult {
    /// Compression ratio of the stored file.
    pub ratio: f64,
    /// Base-clock energies (fetch = "writing" slot, decompress =
    /// "compression" slot of [`PhaseEnergy`]).
    pub base: PhaseEnergy,
    /// Tuned energies.
    pub tuned: PhaseEnergy,
    /// Base-clock overlapped restart (fetch feeds decode through the
    /// bounded prefetch queue): per-phase joules equal `base`'s, wall
    /// time shrinks.
    pub base_overlap: OverlapOutcome,
    /// Tuned overlapped restart.
    pub tuned_overlap: OverlapOutcome,
    /// Overlapped restart re-priced under [`ReadbackConfig::policy`]: the
    /// decode phase runs the planned codec and is attributed at the
    /// plan's DVFS frequency through
    /// [`simulate_pipeline_mixed`]. Identical to
    /// `tuned_overlap` when the policy is fixed.
    pub policy_overlap: OverlapOutcome,
}

impl ReadbackResult {
    /// Fractional energy savings from tuning.
    pub fn savings(&self) -> f64 {
        1.0 - self.tuned.total_j() / self.base.total_j()
    }
}

/// Run the read-back experiment.
pub fn run_readback(cfg: &ReadbackConfig) -> ReadbackResult {
    let machine = Machine::for_chip(cfg.chip);
    let fmax = machine.cpu.f_max_ghz;
    let f_fetch = machine.cpu.snap(cfg.rule.writing_fraction * fmax);
    let f_decomp = machine.cpu.snap(cfg.rule.compression_fraction * fmax);

    let field = nyx::velocity_x(cfg.sample_side, cfg.seed);
    let dims: Vec<usize> = field.dims().extents().to_vec();
    let scale_factor = cfg.total_bytes / field.sample_bytes() as f64;

    let out = cfg
        .compressor
        .codec()
        .compress(&field.data, &dims, BoundSpec::Absolute(cfg.error_bound))
        .expect("NYX samples compress");
    let decomp_profile =
        cfg.cost_model.decompression_profile(cfg.compressor, &out.stats, scale_factor);
    let ratio = out.stats.ratio();
    let compressed_bytes = cfg.total_bytes / ratio;
    // Reading from NFS exercises the same single-core copy path as writing.
    let fetch_profile = machine.nfs.write_profile(compressed_bytes);

    let energy_at = |ff: f64, fd: f64| -> PhaseEnergy {
        let fetch = simulate(&machine, ff, &fetch_profile);
        let dec = simulate(&machine, fd, &decomp_profile);
        PhaseEnergy {
            compression_j: dec.energy_j,
            writing_j: fetch.energy_j,
            compression_s: dec.runtime_s,
            writing_s: fetch.runtime_s,
        }
    };
    let overlap_at = |ff: f64, fd: f64| -> OverlapOutcome {
        scaled_restart(
            &machine,
            ff,
            fd,
            &cfg.cost_model,
            cfg.compressor,
            &out.stats,
            cfg.total_bytes,
            cfg.queue_depth,
        )
    };
    let tuned_overlap = overlap_at(f_fetch, f_decomp);
    let policy_overlap = if cfg.policy == PolicyKind::Fixed {
        tuned_overlap
    } else {
        // Plan the sample chunk; the dump is modelled as N identical
        // sample-sized chunks, so one plan prices them all. The decode
        // phase runs the *planned* codec and is attributed at the plan's
        // frequency; the fetch stage keeps the tuned rule frequency so
        // the comparison isolates the policy's decode decision.
        let policy = build_policy(
            cfg.policy,
            cfg.compressor,
            BoundSpec::Absolute(cfg.error_bound),
            cfg.chip,
            cfg.cost_model,
        );
        let plan = policy.plan(&field.data, 0);
        let planned = compressor_of(plan.codec).unwrap_or(cfg.compressor);
        let stats = if planned == cfg.compressor {
            out.stats
        } else {
            planned
                .codec()
                .compress(&field.data, &dims, plan.bound)
                .expect("NYX samples compress")
                .stats
        };
        let sample_bytes = stats.input_bytes.max(1) as f64;
        let chunks = (cfg.total_bytes / sample_bytes).ceil().max(1.0) as usize;
        let dec_profile = cfg.cost_model.decompression_profile(planned, &stats, 1.0);
        let fetch = machine.nfs.write_profile(sample_bytes / stats.ratio().max(1e-9));
        let f_dec = machine.cpu.snap(plan.f_ghz);
        let raw = simulate_pipeline_mixed(
            &machine,
            &vec![(f_fetch, fetch); chunks],
            &vec![(f_dec, dec_profile); chunks],
            cfg.queue_depth,
        );
        // Same slot swap as `scaled_restart`: decode joules land in the
        // compression slot of readback's convention.
        OverlapOutcome {
            compression_j: raw.writing_j,
            writing_j: raw.compression_j,
            sequential_s: raw.sequential_s,
            pipelined_s: raw.pipelined_s,
        }
    };
    ReadbackResult {
        ratio,
        base: energy_at(fmax, fmax),
        tuned: energy_at(f_fetch, f_decomp),
        base_overlap: overlap_at(fmax, fmax),
        tuned_overlap,
        policy_overlap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readback_tuning_saves_energy() {
        let r = run_readback(&ReadbackConfig::quick());
        assert!(r.savings() > 0.0, "savings {}", r.savings());
        assert!(r.ratio > 1.0);
    }

    #[test]
    fn decompression_is_cheaper_than_compression_side() {
        use crate::datadump::{run_data_dump, DataDumpConfig};
        let rb = run_readback(&ReadbackConfig::quick());
        let mut dump_cfg = DataDumpConfig::quick();
        dump_cfg.error_bounds = vec![1e-3];
        let (rows, _) = run_data_dump(&dump_cfg).expect("quick dump runs");
        assert!(
            rb.base.compression_j < rows[0].base.compression_j,
            "decompress {} !< compress {}",
            rb.base.compression_j,
            rows[0].base.compression_j
        );
    }

    #[test]
    fn overlapped_restart_conserves_phase_energy_and_shrinks_wall_time() {
        let r = run_readback(&ReadbackConfig::quick());
        let rel = |a: f64, b: f64| (a - b).abs() / b;
        for (seq, ov) in [(r.base, r.base_overlap), (r.tuned, r.tuned_overlap)] {
            // Same joules per phase as the sequential accounting (the
            // chunk-count ceiling perturbs at ~1e-7), shorter makespan.
            assert!(rel(ov.compression_j, seq.compression_j) < 1e-4);
            assert!(rel(ov.writing_j, seq.writing_j) < 1e-4);
            assert!(rel(ov.sequential_s, seq.compression_s + seq.writing_s) < 1e-4);
            assert!(ov.pipelined_s < ov.sequential_s);
            assert!(ov.speedup() > 1.0);
        }
    }

    #[test]
    fn zfp_readback_also_saves() {
        let cfg = ReadbackConfig { compressor: Compressor::Zfp, ..ReadbackConfig::quick() };
        let r = run_readback(&cfg);
        assert!(r.savings() > 0.0);
    }

    #[test]
    fn fixed_policy_overlap_equals_tuned_overlap() {
        let r = run_readback(&ReadbackConfig::quick());
        assert_eq!(r.policy_overlap, r.tuned_overlap);
    }

    #[test]
    fn adaptive_policy_attributes_decode_at_planned_frequency() {
        let cfg = ReadbackConfig { policy: PolicyKind::Adaptive, ..ReadbackConfig::quick() };
        let r = run_readback(&cfg);
        // Conservation invariants hold under per-plan attribution.
        assert!(r.policy_overlap.total_j() > 0.0);
        assert!(r.policy_overlap.pipelined_s <= r.policy_overlap.sequential_s + 1e-12);
        // The adaptive plan minimizes decode energy over every
        // (codec, frequency) arm, so its decode-phase joules cannot
        // materially exceed the fixed tuned rule's (small slack for the
        // sampled-window vs full-sample stats gap).
        assert!(
            r.policy_overlap.compression_j <= r.tuned_overlap.compression_j * 1.05,
            "adaptive {} vs tuned {}",
            r.policy_overlap.compression_j,
            r.tuned_overlap.compression_j
        );
    }
}
