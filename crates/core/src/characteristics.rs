//! Scaled characteristic curves — Figures 1–4.
//!
//! §V-A: to compare chips with different TDPs, every measurement group is
//! normalized by its own value at the chip's maximum clock. A group is one
//! (chip, compressor, dataset, error-bound) combination for compression,
//! or one (chip, payload size) for transit. The figures then plot the
//! mean scaled value per frequency with a 95% confidence band across the
//! group members — which is also why the error-bound curves in Figure 1
//! are "close to indiscernible": scaling factors out the magnitude
//! differences between bounds.

use crate::records::{CompressionRecord, TransitRecord};
use lcpio_powersim::Chip;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One point of a characteristic curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Core clock (GHz).
    pub f_ghz: f64,
    /// Mean scaled value across the group members.
    pub mean: f64,
    /// 95% CI half-width across the group members.
    pub ci95: f64,
}

/// One labelled curve (e.g. "Broadwell-SZ").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CurveSeries {
    /// Display label.
    pub label: String,
    /// Chip the frequency axis belongs to.
    pub chip: Chip,
    /// Points ordered by frequency.
    pub points: Vec<CurvePoint>,
}

impl CurveSeries {
    /// Scaled value at the lowest frequency (the curve's floor).
    pub fn floor(&self) -> f64 {
        self.points.first().map(|p| p.mean).unwrap_or(f64::NAN)
    }

    /// Scaled value at the highest frequency (≈1 by construction).
    pub fn at_fmax(&self) -> f64 {
        self.points.last().map(|p| p.mean).unwrap_or(f64::NAN)
    }

    /// Linear interpolation of the curve at `f_ghz`.
    pub fn value_at(&self, f_ghz: f64) -> f64 {
        if self.points.is_empty() {
            return f64::NAN;
        }
        if f_ghz <= self.points[0].f_ghz {
            return self.points[0].mean;
        }
        for w in self.points.windows(2) {
            if f_ghz <= w[1].f_ghz {
                let t = (f_ghz - w[0].f_ghz) / (w[1].f_ghz - w[0].f_ghz);
                return w[0].mean + t * (w[1].mean - w[0].mean);
            }
        }
        // Past the last point: clamp to the curve's f_max value. Total —
        // the empty case returned NaN above.
        self.at_fmax()
    }
}

fn freq_key(f: f64) -> i64 {
    (f * 1000.0).round() as i64
}

fn mean_ci(values: &[f64]) -> (f64, f64) {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if values.len() < 2 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
    (mean, 1.96 * var.sqrt() / n.sqrt())
}

/// Generic scaled-curve builder: `group(record)` identifies the scaling
/// group, `series(record)` the output curve, `value(record)` the quantity.
fn build_curves<R>(
    recs: &[R],
    group: impl Fn(&R) -> u64,
    series: impl Fn(&R) -> (String, Chip),
    f_of: impl Fn(&R) -> f64,
    value: impl Fn(&R) -> f64,
) -> Vec<CurveSeries> {
    // Scaling baseline: the group's value at its maximum frequency.
    let mut group_fmax: HashMap<u64, (f64, f64)> = HashMap::new(); // (fmax, value)
    for r in recs {
        let g = group(r);
        let f = f_of(r);
        let e = group_fmax.entry(g).or_insert((f64::NEG_INFINITY, 1.0));
        if f > e.0 {
            *e = (f, value(r));
        }
    }
    // Accumulate scaled values per (series, frequency).
    let mut acc: HashMap<(String, i64), Vec<f64>> = HashMap::new();
    let mut chips: HashMap<String, Chip> = HashMap::new();
    for r in recs {
        let (label, chip) = series(r);
        chips.insert(label.clone(), chip);
        let base = group_fmax[&group(r)].1;
        if base > 0.0 {
            acc.entry((label, freq_key(f_of(r)))).or_default().push(value(r) / base);
        }
    }
    // Assemble ordered series.
    let mut out: Vec<CurveSeries> = chips
        .into_iter()
        .map(|(label, chip)| {
            let mut points: Vec<CurvePoint> = acc
                .iter()
                .filter(|((l, _), _)| *l == label)
                .map(|((_, fk), vals)| {
                    let (mean, ci95) = mean_ci(vals);
                    CurvePoint { f_ghz: *fk as f64 / 1000.0, mean, ci95 }
                })
                .collect();
            // Total ordering: a NaN frequency (degenerate input record)
            // must not panic the sort — it sorts last and is harmless.
            points.sort_by(|a, b| a.f_ghz.total_cmp(&b.f_ghz));
            CurveSeries { label, chip, points }
        })
        .collect();
    out.sort_by(|a, b| a.label.cmp(&b.label));
    out
}

fn comp_group_key(r: &CompressionRecord) -> u64 {
    let chip = r.chip as u64;
    let comp = r.compressor as u64;
    let ds = r.dataset as u64;
    (chip << 60) ^ (comp << 56) ^ (ds << 50) ^ r.error_bound.to_bits()
}

/// Figure 1: compression scaled power, one curve per (chip, compressor).
pub fn compression_power_curves(recs: &[CompressionRecord]) -> Vec<CurveSeries> {
    build_curves(
        recs,
        comp_group_key,
        |r| (format!("{}-{}", r.chip.name(), r.compressor.name()), r.chip),
        |r| r.f_ghz,
        |r| r.power_w,
    )
}

/// Figure 2: compression scaled runtime.
pub fn compression_runtime_curves(recs: &[CompressionRecord]) -> Vec<CurveSeries> {
    build_curves(
        recs,
        comp_group_key,
        |r| (format!("{}-{}", r.chip.name(), r.compressor.name()), r.chip),
        |r| r.f_ghz,
        |r| r.runtime_s,
    )
}

fn transit_group_key(r: &TransitRecord) -> u64 {
    ((r.chip as u64) << 60) ^ r.bytes.to_bits()
}

/// Figure 3: transit scaled power, one curve per chip (sizes are group
/// members — the paper found no size dependence after scaling).
pub fn transit_power_curves(recs: &[TransitRecord]) -> Vec<CurveSeries> {
    build_curves(
        recs,
        transit_group_key,
        |r| (r.chip.name().to_string(), r.chip),
        |r| r.f_ghz,
        |r| r.power_w,
    )
}

/// Figure 4: transit scaled runtime.
pub fn transit_runtime_curves(recs: &[TransitRecord]) -> Vec<CurveSeries> {
    build_curves(
        recs,
        transit_group_key,
        |r| (r.chip.name().to_string(), r.chip),
        |r| r.f_ghz,
        |r| r.runtime_s,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_compression_sweep, run_transit_sweep, ExperimentConfig};

    fn quick_recs() -> Vec<CompressionRecord> {
        run_compression_sweep(&ExperimentConfig::quick())
    }

    #[test]
    fn four_compression_series_normalized_at_fmax() {
        let curves = compression_power_curves(&quick_recs());
        assert_eq!(curves.len(), 4, "{:?}", curves.iter().map(|c| &c.label).collect::<Vec<_>>());
        for c in &curves {
            assert!((c.at_fmax() - 1.0).abs() < 0.05, "{}: {}", c.label, c.at_fmax());
            assert!(c.floor() < 1.0, "{}: floor {}", c.label, c.floor());
        }
    }

    #[test]
    fn power_floor_matches_paper_bands() {
        // Figure 1: compression scaled power bottoms around 0.7–0.85.
        for c in compression_power_curves(&quick_recs()) {
            assert!((0.6..0.95).contains(&c.floor()), "{}: {}", c.label, c.floor());
        }
    }

    #[test]
    fn runtime_curves_peak_at_low_frequency() {
        // Figure 2: runtime at f_min is the maximum (>1), at f_max = 1.
        for c in compression_runtime_curves(&quick_recs()) {
            assert!((c.at_fmax() - 1.0).abs() < 0.05);
            assert!(c.floor() > 1.2, "{}: {}", c.label, c.floor());
        }
    }

    #[test]
    fn transit_power_range_is_narrower_than_compression() {
        let cfg = ExperimentConfig::quick();
        let comp = compression_power_curves(&run_compression_sweep(&cfg));
        let tran = transit_power_curves(&run_transit_sweep(&cfg));
        assert_eq!(tran.len(), 2);
        let comp_floor: f64 =
            comp.iter().map(|c| c.floor()).sum::<f64>() / comp.len() as f64;
        let tran_floor: f64 =
            tran.iter().map(|c| c.floor()).sum::<f64>() / tran.len() as f64;
        assert!(
            tran_floor > comp_floor,
            "transit floor {tran_floor} should exceed compression floor {comp_floor}"
        );
    }

    #[test]
    fn value_at_interpolates() {
        let s = CurveSeries {
            label: "t".into(),
            chip: Chip::Broadwell,
            points: vec![
                CurvePoint { f_ghz: 1.0, mean: 0.8, ci95: 0.0 },
                CurvePoint { f_ghz: 2.0, mean: 1.0, ci95: 0.0 },
            ],
        };
        assert!((s.value_at(1.5) - 0.9).abs() < 1e-12);
        assert_eq!(s.value_at(0.5), 0.8);
        assert_eq!(s.value_at(2.5), 1.0);
    }

    #[test]
    fn empty_series_value_at_is_nan_not_panic() {
        let s = CurveSeries { label: "empty".into(), chip: Chip::Broadwell, points: vec![] };
        assert!(s.value_at(1.0).is_nan());
        assert!(s.floor().is_nan());
        assert!(s.at_fmax().is_nan());
    }

    #[test]
    fn nan_frequency_records_do_not_panic_curve_building() {
        // A degenerate record with a NaN clock must not abort the sort in
        // build_curves (historically partial_cmp().unwrap() panicked here).
        let mut recs = quick_recs();
        let mut bad = recs[0];
        bad.f_ghz = f64::NAN;
        recs.push(bad);
        let curves = compression_power_curves(&recs);
        assert!(!curves.is_empty());
        for c in &curves {
            // NaN keys sort last under total_cmp; finite points stay ordered.
            let finite: Vec<f64> =
                c.points.iter().map(|p| p.f_ghz).filter(|f| f.is_finite()).collect();
            assert!(finite.windows(2).all(|w| w[0] <= w[1]), "{}: {:?}", c.label, finite);
        }
    }

    #[test]
    fn confidence_bands_exist_with_noise() {
        let curves = compression_power_curves(&quick_recs());
        let any_ci = curves
            .iter()
            .flat_map(|c| &c.points)
            .any(|p| p.ci95 > 0.0);
        assert!(any_ci, "noisy sweeps must produce nonzero CI bands");
    }
}
