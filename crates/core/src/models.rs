//! Fitted power-model tables — Tables IV and V.
//!
//! Each slice of the sweep is regressed as `P(f) = a·f^b + c` (Eqn 2) on
//! *scaled* power (each group normalized by its value at f_max, exactly as
//! in the paper, which is why the fitted `c` lands near 0.75–0.8: that is
//! the scaled idle floor). The GF columns (SSE, RMSE, R²) come from
//! [`lcpio_fit`].

use crate::characteristics::CurveSeries;
use crate::records::{CompressionRecord, TransitRecord};
use crate::slicing::{CompressionSlice, TransitSlice};
use lcpio_fit::powerlaw::{fit_power_law, PowerLawFit};
use lcpio_powersim::Chip;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One row of Table IV or V.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelRow {
    /// Slice name ("Total", "SZ", …).
    pub name: String,
    /// The fitted `a·f^b + c` model with its GF statistics.
    pub fit: PowerLawFit,
}

/// Scaled (f, power) observations for a compression slice.
fn scaled_points(
    recs: &[CompressionRecord],
    slice: CompressionSlice,
) -> (Vec<f64>, Vec<f64>) {
    // Normalize per group using the group's f_max record.
    let mut fmax: HashMap<u64, (f64, f64)> = HashMap::new();
    let key = |r: &CompressionRecord| -> u64 {
        ((r.chip as u64) << 60)
            ^ ((r.compressor as u64) << 56)
            ^ ((r.dataset as u64) << 50)
            ^ r.error_bound.to_bits()
    };
    for r in recs {
        let e = fmax.entry(key(r)).or_insert((f64::NEG_INFINITY, 1.0));
        if r.f_ghz > e.0 {
            *e = (r.f_ghz, r.power_w);
        }
    }
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for r in recs {
        if slice.contains(r) {
            xs.push(r.f_ghz);
            ys.push(r.power_w / fmax[&key(r)].1);
        }
    }
    (xs, ys)
}

/// Build Table IV: compression power models for all five slices.
pub fn compression_model_table(recs: &[CompressionRecord]) -> Vec<ModelRow> {
    CompressionSlice::ALL
        .iter()
        .map(|&slice| {
            let (xs, ys) = scaled_points(recs, slice);
            let fit = fit_power_law(&xs, &ys).expect("sweep slices are well-formed");
            ModelRow { name: slice.name().to_string(), fit }
        })
        .collect()
}

/// Build Table V: transit power models for all three slices.
pub fn transit_model_table(recs: &[TransitRecord]) -> Vec<ModelRow> {
    let mut fmax: HashMap<u64, (f64, f64)> = HashMap::new();
    let key = |r: &TransitRecord| ((r.chip as u64) << 60) ^ r.bytes.to_bits();
    for r in recs {
        let e = fmax.entry(key(r)).or_insert((f64::NEG_INFINITY, 1.0));
        if r.f_ghz > e.0 {
            *e = (r.f_ghz, r.power_w);
        }
    }
    TransitSlice::ALL
        .iter()
        .map(|&slice| {
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            for r in recs {
                if slice.contains(r) {
                    xs.push(r.f_ghz);
                    ys.push(r.power_w / fmax[&key(r)].1);
                }
            }
            let fit = fit_power_law(&xs, &ys).expect("sweep slices are well-formed");
            ModelRow { name: slice.name().to_string(), fit }
        })
        .collect()
}

/// Look up a fitted model row by slice name.
pub fn row<'a>(table: &'a [ModelRow], name: &str) -> Option<&'a ModelRow> {
    table.iter().find(|r| r.name == name)
}

/// §IV-A's key finding, made checkable: per-chip models must fit better
/// (lower RMSE) than the pooled model.
pub fn hardware_dominates(table: &[ModelRow]) -> bool {
    let total = row(table, "Total").map(|r| r.fit.gof.rmse).unwrap_or(f64::NAN);
    let bd = row(table, "Broadwell").map(|r| r.fit.gof.rmse).unwrap_or(f64::NAN);
    let sk = row(table, "Skylake").map(|r| r.fit.gof.rmse).unwrap_or(f64::NAN);
    bd < total && sk < total
}

/// Curve series for one fitted model (for Figure 5-style overlays).
pub fn model_curve(fit: &PowerLawFit, chip: Chip, label: &str) -> CurveSeries {
    let spec = chip.spec();
    let points = spec
        .ladder()
        .map(|f| crate::characteristics::CurvePoint { f_ghz: f, mean: fit.eval(f), ci95: 0.0 })
        .collect();
    CurveSeries { label: label.to_string(), chip, points }
}

/// Convenience: fit tables straight from a sweep (used by benches).
pub fn tables_from_sweep(
    compression: &[CompressionRecord],
    transit: &[TransitRecord],
) -> (Vec<ModelRow>, Vec<ModelRow>) {
    (compression_model_table(compression), transit_model_table(transit))
}

// Re-exported for table assembly elsewhere.
pub use crate::characteristics::CurvePoint;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characteristics::compression_power_curves;
    use crate::experiment::{run_compression_sweep, run_transit_sweep, ExperimentConfig};

    fn tables() -> (Vec<ModelRow>, Vec<ModelRow>) {
        let cfg = ExperimentConfig::quick();
        (
            compression_model_table(&run_compression_sweep(&cfg)),
            transit_model_table(&run_transit_sweep(&cfg)),
        )
    }

    #[test]
    fn table4_has_five_rows_in_paper_order() {
        let (t4, _) = tables();
        let names: Vec<_> = t4.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["Total", "SZ", "ZFP", "Broadwell", "Skylake"]);
    }

    #[test]
    fn table5_has_three_rows() {
        let (_, t5) = tables();
        let names: Vec<_> = t5.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, vec!["Total", "Broadwell", "Skylake"]);
    }

    #[test]
    fn per_chip_models_fit_better_than_pooled() {
        // §IV-A: "the Broadwell and Skylake power consumption models have a
        // lower SSE and RMSE … power consumption is less dependent on the
        // choice of lossy compressor."
        let (t4, t5) = tables();
        assert!(hardware_dominates(&t4), "table IV: {t4:?}");
        assert!(hardware_dominates(&t5), "table V: {t5:?}");
    }

    #[test]
    fn skylake_exponent_dwarfs_broadwell() {
        // Table IV: b ≈ 5.3 (Broadwell) vs b ≈ 23.3 (Skylake) — a 4.4×
        // gap. Require a clear (>1.6×) separation in the reproduction.
        // The Skylake exponent is weakly identified (knee-shaped curve):
        // its noise-free fit here is ≈12, but measurement noise wobbles
        // it by a few units, so the hard floor stays below that.
        let (t4, _) = tables();
        let bd = row(&t4, "Broadwell").unwrap().fit.b;
        let sk = row(&t4, "Skylake").unwrap().fit.b;
        assert!(sk > 1.6 * bd, "broadwell b={bd}, skylake b={sk}");
        assert!(sk > 8.0, "skylake b={sk} should be extreme");
    }

    #[test]
    fn offsets_land_near_the_scaled_floor() {
        // The paper's models all have c ∈ [0.70, 0.90] — the scaled idle
        // floor. For knee-shaped (Skylake-like) data the (a, b, c) triple
        // is weakly identified and the SSE-optimal c can drift lower, so
        // only the smoother slices are held to the paper band.
        let (t4, t5) = tables();
        for r in t4.iter().chain(&t5) {
            if r.name == "Skylake" {
                assert!((0.10..0.95).contains(&r.fit.c), "{}: c={}", r.name, r.fit.c);
            } else {
                assert!((0.50..0.95).contains(&r.fit.c), "{}: c={}", r.name, r.fit.c);
            }
        }
    }

    #[test]
    fn fitted_curves_track_measured_curves() {
        let cfg = ExperimentConfig::quick();
        let recs = run_compression_sweep(&cfg);
        let t4 = compression_model_table(&recs);
        let bd = row(&t4, "Broadwell").unwrap();
        let measured = compression_power_curves(&recs);
        let bd_curve = measured
            .iter()
            .find(|c| c.label.starts_with("Broadwell"))
            .unwrap();
        for p in &bd_curve.points {
            let err = (bd.fit.eval(p.f_ghz) - p.mean).abs();
            assert!(err < 0.08, "f={} err={err}", p.f_ghz);
        }
    }

    #[test]
    fn model_curve_spans_the_ladder() {
        let (t4, _) = tables();
        let c = model_curve(&row(&t4, "Broadwell").unwrap().fit, Chip::Broadwell, "model");
        assert_eq!(c.points.len(), 25);
        assert!((c.points[0].f_ghz - 0.8).abs() < 1e-9);
    }
}
