//! Energy–runtime trade-off analysis (extension).
//!
//! The paper frames tuning as a user trade-off ("Would a user benefit from
//! faster compression? or less energy-consumed?" — §V-A3) but reports only
//! the fixed Eqn-3 point. This module makes the whole trade-off space a
//! first-class object: per-frequency (runtime, energy) points, the Pareto
//! front, and the classic scalarizations — minimum energy and minimum
//! energy-delay product (EDP).

use lcpio_powersim::{simulate, Machine, WorkProfile};
use serde::{Deserialize, Serialize};

/// One operating point on the DVFS ladder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrequencyPoint {
    /// Core clock (GHz).
    pub f_ghz: f64,
    /// Average power (W).
    pub power_w: f64,
    /// Runtime (s).
    pub runtime_s: f64,
    /// Energy (J).
    pub energy_j: f64,
}

impl FrequencyPoint {
    /// Energy-delay product (J·s).
    pub fn edp(&self) -> f64 {
        self.energy_j * self.runtime_s
    }

    /// Energy-delay² product (J·s²), for latency-critical weighting.
    pub fn ed2p(&self) -> f64 {
        self.energy_j * self.runtime_s * self.runtime_s
    }
}

/// Evaluate a work profile at every ladder frequency.
pub fn frequency_profile(machine: &Machine, job: &WorkProfile) -> Vec<FrequencyPoint> {
    machine
        .cpu
        .ladder()
        .map(|f| {
            let m = simulate(machine, f, job);
            FrequencyPoint {
                f_ghz: f,
                power_w: m.avg_power_w,
                runtime_s: m.runtime_s,
                energy_j: m.energy_j,
            }
        })
        .collect()
}

/// The (runtime, energy) Pareto front: points not dominated by any other
/// (strictly better in one dimension, no worse in the other). Returned in
/// increasing runtime order.
pub fn pareto_front(points: &[FrequencyPoint]) -> Vec<FrequencyPoint> {
    let mut sorted: Vec<FrequencyPoint> = points.to_vec();
    sorted.sort_by(|a, b| {
        a.runtime_s
            .partial_cmp(&b.runtime_s)
            .expect("runtimes are finite")
            .then(a.energy_j.partial_cmp(&b.energy_j).expect("energies are finite"))
    });
    let mut front: Vec<FrequencyPoint> = Vec::new();
    let mut best_energy = f64::INFINITY;
    for p in sorted {
        if p.energy_j < best_energy - 1e-12 {
            best_energy = p.energy_j;
            front.push(p);
        }
    }
    front
}

/// Operating point with minimum energy.
pub fn energy_optimal(points: &[FrequencyPoint]) -> Option<&FrequencyPoint> {
    points
        .iter()
        .min_by(|a, b| a.energy_j.partial_cmp(&b.energy_j).expect("finite"))
}

/// Operating point with minimum energy-delay product.
pub fn edp_optimal(points: &[FrequencyPoint]) -> Option<&FrequencyPoint> {
    points.iter().min_by(|a, b| a.edp().partial_cmp(&b.edp()).expect("finite"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcpio_powersim::Chip;

    fn comp_job() -> WorkProfile {
        WorkProfile { compute_cycles: 30e9, memory_bytes: 160e9, ..Default::default() }
    }

    #[test]
    fn profile_spans_ladder() {
        let m = Machine::for_chip(Chip::Broadwell);
        let pts = frequency_profile(&m, &comp_job());
        assert_eq!(pts.len(), 25);
        assert!(pts.iter().all(|p| p.energy_j > 0.0 && p.runtime_s > 0.0));
    }

    #[test]
    fn front_is_nondominated_and_sorted() {
        let m = Machine::for_chip(Chip::Broadwell);
        let pts = frequency_profile(&m, &comp_job());
        let front = pareto_front(&pts);
        assert!(!front.is_empty());
        for w in front.windows(2) {
            assert!(w[1].runtime_s > w[0].runtime_s);
            assert!(w[1].energy_j < w[0].energy_j);
        }
        // Every ladder point is dominated by or equal to some front point.
        for p in &pts {
            assert!(front
                .iter()
                .any(|f| f.runtime_s <= p.runtime_s + 1e-12 && f.energy_j <= p.energy_j + 1e-9));
        }
    }

    #[test]
    fn energy_optimum_is_below_fmax_on_knee_chips() {
        // The knee makes f_max energy-suboptimal: the Eqn-3 story.
        for chip in Chip::ALL {
            let m = Machine::for_chip(chip);
            let pts = frequency_profile(&m, &comp_job());
            let opt = energy_optimal(&pts).expect("nonempty ladder");
            assert!(
                opt.f_ghz < m.cpu.f_max_ghz,
                "{}: optimum at f_max",
                chip.name()
            );
            assert!(opt.energy_j < pts.last().expect("nonempty").energy_j);
        }
    }

    #[test]
    fn edp_optimum_is_at_or_above_energy_optimum_frequency() {
        // EDP penalizes runtime, so it never picks a lower clock than the
        // pure-energy optimum.
        let m = Machine::for_chip(Chip::Broadwell);
        let pts = frequency_profile(&m, &comp_job());
        let e = energy_optimal(&pts).expect("nonempty");
        let edp = edp_optimal(&pts).expect("nonempty");
        assert!(edp.f_ghz >= e.f_ghz - 1e-12, "edp {} vs energy {}", edp.f_ghz, e.f_ghz);
    }

    #[test]
    fn generalization_chip_also_benefits_from_tuning() {
        // The paper's future-work question: do the trends hold on a CPU
        // outside the regression set?
        let m = Machine::for_chip(Chip::EpycLike);
        let pts = frequency_profile(&m, &comp_job());
        let opt = energy_optimal(&pts).expect("nonempty");
        let at_fmax = pts.last().expect("nonempty");
        assert!(opt.f_ghz < m.cpu.f_max_ghz);
        let savings = 1.0 - opt.energy_j / at_fmax.energy_j;
        assert!(savings > 0.02, "EPYC-like savings {savings}");
    }

    #[test]
    fn empty_points_are_handled() {
        assert!(energy_optimal(&[]).is_none());
        assert!(edp_optimal(&[]).is_none());
        assert!(pareto_front(&[]).is_empty());
    }
}
