//! The experiment pipeline: the sweeps behind every table and figure.
//!
//! §IV's methodology, end to end: generate (synthetic) fields, really
//! compress them with SZ and ZFP at four error bounds, convert the
//! measured operation counts into work profiles, then sweep the DVFS
//! ladder of both chips measuring energy and runtime with 10 noisy
//! repetitions per point. Compression and transit jobs fan out across
//! scoped worker threads ([`crate::par::par_map`]); results are
//! deterministic because every combination derives its own RNG seed from
//! its identity, not from scheduling order.

use crate::policy::{interleaved_cesm_hacc, run_policy_study, PolicyRecord, PolicyStudy};
use crate::records::{CompressionRecord, Compressor, TransitRecord};
use crate::workmap::CostModel;
use lcpio_datagen::Dataset;
use lcpio_powersim::{Chip, Machine, Perf};
use lcpio_codec::BoundSpec;
use serde::{Deserialize, Serialize};

/// The paper's four error bounds (§III-A).
pub const PAPER_ERROR_BOUNDS: [f64; 4] = [1e-1, 1e-2, 1e-3, 1e-4];

/// The paper's data-transit sizes: 1–16 GB (§IV-B).
pub const PAPER_TRANSIT_GB: [f64; 5] = [1.0, 2.0, 4.0, 8.0, 16.0];

/// Everything needed to reproduce one full sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Element-count divisor for dataset samples (1 = full size).
    pub scale: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Repetitions per (config, frequency) point; the paper uses 10.
    pub reps: u32,
    /// Absolute error bounds to compress at.
    pub error_bounds: Vec<f64>,
    /// Datasets to compress.
    pub datasets: Vec<Dataset>,
    /// Chips to sweep.
    pub chips: Vec<Chip>,
    /// Compressors to run.
    pub compressors: Vec<Compressor>,
    /// Cost-model constants (see [`CostModel`]).
    pub cost_model: CostModel,
    /// Measurement noise σ.
    pub noise_sigma: f64,
    /// Transit payload sizes in GB.
    pub transit_gb: Vec<f64>,
    /// Worker threads for sweep fan-out and chunked SZ compression
    /// (0 = all available cores).
    pub threads: usize,
}

impl ExperimentConfig {
    /// Full paper configuration on moderately sized samples (≈0.5–1 M
    /// elements per dataset). Runs in seconds in release mode.
    pub fn paper() -> Self {
        ExperimentConfig {
            scale: 256,
            seed: 20220530, // IPDPS-W 2022
            reps: 10,
            error_bounds: PAPER_ERROR_BOUNDS.to_vec(),
            datasets: Dataset::MODEL_SETS.to_vec(),
            chips: Chip::ALL.to_vec(),
            compressors: Compressor::ALL.to_vec(),
            cost_model: CostModel::default(),
            noise_sigma: lcpio_powersim::DEFAULT_NOISE_SIGMA,
            transit_gb: PAPER_TRANSIT_GB.to_vec(),
            threads: 0,
        }
    }

    /// Small configuration for unit tests and debug builds.
    pub fn quick() -> Self {
        ExperimentConfig {
            scale: 16384,
            reps: 3,
            error_bounds: vec![1e-2, 1e-4],
            ..Self::paper()
        }
    }

    /// Deterministic per-combination seed.
    fn combo_seed(&self, comp: Compressor, ds: Dataset, eb_idx: usize) -> u64 {
        let c = match comp {
            Compressor::Sz => 1u64,
            Compressor::Zfp => 2,
        };
        let d = match ds {
            Dataset::CesmAtm => 1u64,
            Dataset::Hacc => 2,
            Dataset::Nyx => 3,
            Dataset::Isabel => 4,
        };
        self.seed
            .wrapping_mul(0x9e3779b97f4a7c15)
            .wrapping_add(c * 1_000_003 + d * 10_007 + eb_idx as u64)
    }
}

/// Output of one compression run prior to the frequency sweep.
#[derive(Debug, Clone)]
struct CompressedJob {
    compressor: Compressor,
    dataset: Dataset,
    error_bound: f64,
    profile: lcpio_powersim::WorkProfile,
    ratio: f64,
    seed: u64,
}

/// Results of the full sweep (the paper's raw dataset).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SweepResult {
    /// One record per (chip, compressor, dataset, eb, frequency).
    pub compression: Vec<CompressionRecord>,
    /// One record per (chip, size, frequency).
    pub transit: Vec<TransitRecord>,
    /// Adaptive-policy axis: per chip, every fixed codec×frequency arm
    /// plus the heuristic and adaptive policies evaluated over the
    /// interleaved CESM+HACC workload ([`run_policy_sweep`]).
    pub policy: Vec<PolicyRecord>,
}

impl SweepResult {
    /// Serialize to pretty JSON (for EXPERIMENTS.md provenance).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("sweep serialization cannot fail")
    }
}

/// Generate the sample field for one dataset.
///
/// The field depends only on `(dataset, scale, seed)` — never on the
/// compressor or error bound — so [`run_compression_sweep`] generates it
/// once per dataset and shares it across all combos
/// ([`tests::hoisted_field_generation_leaves_sweep_unchanged`] pins that
/// the hoist changed nothing).
fn dataset_field(cfg: &ExperimentConfig, ds: Dataset) -> lcpio_datagen::Field {
    ds.generate(cfg.scale, cfg.seed ^ 0xD5)
}

/// Really compress one dataset sample and derive its work profile.
fn run_compression_job(
    cfg: &ExperimentConfig,
    comp: Compressor,
    ds: Dataset,
    field: &lcpio_datagen::Field,
    eb: f64,
    seed: u64,
) -> CompressedJob {
    let dims: Vec<usize> = field.dims().extents().to_vec();
    let scale_factor = field.scale_factor();
    // `compress_for_profile` picks each codec's thread-neutral container:
    // SZ's chunked stream (bytes/stats identical at every inner thread
    // count) with one inner worker — the sweep's own pool already
    // saturates the cores — and ZFP's serial stream.
    let out = comp
        .codec()
        .compress_for_profile(&field.data, &dims, BoundSpec::Absolute(eb))
        .expect("generated fields always compress");
    let profile = cfg.cost_model.compression_profile(comp, &out.stats, scale_factor);
    let ratio = out.stats.ratio();
    CompressedJob { compressor: comp, dataset: ds, error_bound: eb, profile, ratio, seed }
}

/// Run the full compression sweep of §IV-A.
pub fn run_compression_sweep(cfg: &ExperimentConfig) -> Vec<CompressionRecord> {
    let _span = lcpio_trace::span("core.sweep.compression");
    // Generate each dataset's sample field once; every (compressor, eb)
    // combo reuses it. The fields are combo-invariant, so regenerating
    // them inside the fan-out below (as this driver once did) only
    // repeated identical spectral synthesis 2 × |error_bounds| times per
    // dataset.
    let fields: Vec<lcpio_datagen::Field> =
        crate::par::par_map(&cfg.datasets, cfg.threads, |_, &ds| dataset_field(cfg, ds));

    // Enumerate combinations with their deterministic seeds.
    let combos: Vec<(Compressor, usize, f64, u64)> = cfg
        .compressors
        .iter()
        .flat_map(|&comp| {
            cfg.datasets.iter().enumerate().flat_map(move |(di, _)| {
                cfg.error_bounds
                    .iter()
                    .enumerate()
                    .map(move |(i, &eb)| (comp, di, eb, i as u64))
            })
        })
        .map(|(comp, di, eb, i)| {
            (comp, di, eb, cfg.combo_seed(comp, cfg.datasets[di], i as usize))
        })
        .collect();

    // Fan the (real) compression work out over scoped worker threads.
    let jobs: Vec<CompressedJob> = crate::par::par_map(&combos, cfg.threads, |_, &(comp, di, eb, seed)| {
        run_compression_job(cfg, comp, cfg.datasets[di], &fields[di], eb, seed)
    });

    // Frequency sweep: cheap, deterministic, sequential.
    let mut records = Vec::new();
    for job in &jobs {
        for &chip in &cfg.chips {
            let machine = Machine::for_chip(chip);
            let mut perf = Perf::with_sigma(job.seed ^ (chip as u64) << 32, cfg.noise_sigma);
            for f in machine.cpu.ladder() {
                let stat = perf.measure(&machine, f, &job.profile, cfg.reps);
                records.push(CompressionRecord {
                    chip,
                    compressor: job.compressor,
                    dataset: job.dataset,
                    error_bound: job.error_bound,
                    f_ghz: f,
                    power_w: stat.power_w,
                    runtime_s: stat.runtime_s,
                    energy_j: stat.energy_j,
                    power_ci95_w: stat.power_ci95_w,
                    ratio: job.ratio,
                });
            }
        }
    }
    records
}

/// Run the data-transit sweep of §IV-B.
///
/// Each (chip, size) combination is independent and derives its RNG seed
/// from its identity, so the combos fan out over the shared worker pool
/// with record order fixed by the combo index.
pub fn run_transit_sweep(cfg: &ExperimentConfig) -> Vec<TransitRecord> {
    let _span = lcpio_trace::span("core.sweep.transit");
    let combos: Vec<(Chip, usize, f64)> = cfg
        .chips
        .iter()
        .flat_map(|&chip| {
            cfg.transit_gb.iter().enumerate().map(move |(si, &gb)| (chip, si, gb))
        })
        .collect();
    let per_combo = crate::par::par_map(&combos, cfg.threads, |_, &(chip, si, gb)| {
        let machine = Machine::for_chip(chip);
        let bytes = gb * 1e9;
        let profile = machine.nfs.write_profile(bytes);
        let mut perf = Perf::with_sigma(
            cfg.seed ^ ((chip as u64) << 24) ^ ((si as u64) << 8),
            cfg.noise_sigma,
        );
        let mut records = Vec::new();
        for f in machine.cpu.ladder() {
            let stat = perf.measure(&machine, f, &profile, cfg.reps);
            records.push(TransitRecord {
                chip,
                bytes,
                f_ghz: f,
                power_w: stat.power_w,
                runtime_s: stat.runtime_s,
                energy_j: stat.energy_j,
                power_ci95_w: stat.power_ci95_w,
            });
        }
        records
    });
    per_combo.into_iter().flatten().collect()
}

/// Elements per chunk of the policy sweep's interleaved workload.
pub const POLICY_SWEEP_CHUNK_ELEMENTS: usize = 8192;

/// Chunks in the policy sweep's interleaved workload (alternating CESM
/// and range-amplified HACC).
pub const POLICY_SWEEP_CHUNKS: usize = 8;

/// Run the adaptive-policy axis: for every chip, evaluate each fixed
/// codec×frequency arm plus the heuristic and adaptive policies over the
/// interleaved CESM+HACC workload, one [`PolicyRecord`] per arm.
///
/// The chips fan out over the shared worker pool; each chip's study is
/// deterministic (real compressions of a seeded workload, modelled
/// energies), so record order is fixed by the chip index.
pub fn run_policy_sweep(cfg: &ExperimentConfig) -> Vec<PolicyRecord> {
    let _span = lcpio_trace::span("core.sweep.policy");
    let data =
        interleaved_cesm_hacc(POLICY_SWEEP_CHUNK_ELEMENTS, POLICY_SWEEP_CHUNKS, cfg.seed);
    let per_chip = crate::par::par_map(&cfg.chips, cfg.threads, |_, &chip| {
        let study = PolicyStudy {
            chip,
            cost_model: cfg.cost_model,
            chunk_elements: POLICY_SWEEP_CHUNK_ELEMENTS,
            ..PolicyStudy::default()
        };
        let result = run_policy_study(&data, &study);
        // Canonical records only: the measured wall-times would break the
        // provenance manifest's rerun-determinism digest.
        result.all().into_iter().map(|r| r.clone().canonical()).collect::<Vec<PolicyRecord>>()
    });
    per_chip.into_iter().flatten().collect()
}

/// Run all three sweeps.
pub fn run_full_sweep(cfg: &ExperimentConfig) -> SweepResult {
    SweepResult {
        compression: run_compression_sweep(cfg),
        transit: run_transit_sweep(cfg),
        policy: run_policy_sweep(cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_covers_all_combinations() {
        let cfg = ExperimentConfig::quick();
        let recs = run_compression_sweep(&cfg);
        // 2 compressors × 3 datasets × 2 ebs × (25 + 29) frequencies.
        assert_eq!(recs.len(), 2 * 3 * 2 * (25 + 29));
        // All records carry positive physical quantities.
        for r in &recs {
            assert!(r.power_w > 0.0 && r.runtime_s > 0.0 && r.energy_j > 0.0);
            assert!(r.ratio > 1.0, "{:?} ratio {}", r.dataset, r.ratio);
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let cfg = ExperimentConfig::quick();
        let a = run_compression_sweep(&cfg);
        let b = run_compression_sweep(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.power_w, y.power_w);
            assert_eq!(x.energy_j, y.energy_j);
        }
    }

    #[test]
    fn transit_sweep_shape() {
        let mut cfg = ExperimentConfig::quick();
        cfg.transit_gb = vec![1.0, 4.0];
        let recs = run_transit_sweep(&cfg);
        assert_eq!(recs.len(), 2 * (25 + 29));
        // Bigger payloads take longer at the same frequency.
        let at = |chip: Chip, gb: f64| {
            recs.iter()
                .find(|r| r.chip == chip && (r.bytes - gb * 1e9).abs() < 1.0 && r.f_ghz > 1.99)
                .unwrap()
                .runtime_s
        };
        assert!(at(Chip::Broadwell, 4.0) > 3.0 * at(Chip::Broadwell, 1.0));
    }

    #[test]
    fn finer_error_bound_costs_more_energy() {
        let cfg = ExperimentConfig::quick();
        let recs = run_compression_sweep(&cfg);
        // Compare mean energy at the two bounds for SZ on NYX, Broadwell.
        let mean_energy = |eb: f64| {
            let sel: Vec<f64> = recs
                .iter()
                .filter(|r| {
                    r.chip == Chip::Broadwell
                        && r.compressor == Compressor::Sz
                        && r.dataset == Dataset::Nyx
                        && (r.error_bound - eb).abs() < 1e-12
                })
                .map(|r| r.energy_j)
                .collect();
            sel.iter().sum::<f64>() / sel.len() as f64
        };
        assert!(mean_energy(1e-4) > mean_energy(1e-2));
    }

    #[test]
    fn hoisted_field_generation_leaves_sweep_unchanged() {
        // Regression for the invariant hoist: the driver used to call
        // `ds.generate` inside every (compressor, eb) combo. Rebuild the
        // records the old way — regenerating the field per combo — and
        // require bitwise-identical output from the hoisted driver.
        let mut cfg = ExperimentConfig::quick();
        cfg.datasets = vec![Dataset::Nyx, Dataset::Hacc];
        let hoisted = run_compression_sweep(&cfg);

        let mut reference = Vec::new();
        for &comp in &cfg.compressors {
            for &ds in &cfg.datasets {
                for (i, &eb) in cfg.error_bounds.iter().enumerate() {
                    let field = ds.generate(cfg.scale, cfg.seed ^ 0xD5); // per-combo, as before
                    let job = run_compression_job(
                        &cfg,
                        comp,
                        ds,
                        &field,
                        eb,
                        cfg.combo_seed(comp, ds, i),
                    );
                    for &chip in &cfg.chips {
                        let machine = Machine::for_chip(chip);
                        let mut perf =
                            Perf::with_sigma(job.seed ^ (chip as u64) << 32, cfg.noise_sigma);
                        for f in machine.cpu.ladder() {
                            let stat = perf.measure(&machine, f, &job.profile, cfg.reps);
                            reference.push((f, stat.power_w, stat.energy_j, job.ratio));
                        }
                    }
                }
            }
        }
        assert_eq!(hoisted.len(), reference.len());
        for (h, r) in hoisted.iter().zip(&reference) {
            assert_eq!(h.f_ghz, r.0);
            assert_eq!(h.power_w, r.1);
            assert_eq!(h.energy_j, r.2);
            assert_eq!(h.ratio, r.3);
        }
    }

    #[test]
    fn json_roundtrip() {
        let mut cfg = ExperimentConfig::quick();
        cfg.datasets = vec![Dataset::Nyx];
        cfg.compressors = vec![Compressor::Sz];
        cfg.error_bounds = vec![1e-2];
        let res = run_full_sweep(&cfg);
        let json = res.to_json();
        let back: SweepResult = serde_json::from_str(&json).unwrap();
        assert_eq!(back.compression.len(), res.compression.len());
        assert_eq!(back.transit.len(), res.transit.len());
        assert_eq!(back.policy.len(), res.policy.len());
        assert_eq!(back.policy.last().map(|p| p.label.clone()),
                   res.policy.last().map(|p| p.label.clone()));
    }

    #[test]
    fn policy_sweep_covers_every_chip_and_adaptive_dominates() {
        let mut cfg = ExperimentConfig::quick();
        cfg.chips = vec![Chip::Broadwell, Chip::Skylake];
        let recs = run_policy_sweep(&cfg);
        // Per chip: 2 codecs × ladder points fixed arms + heuristic +
        // adaptive.
        let per_chip = |chip: Chip| recs.iter().filter(|r| r.chip == chip).count();
        let ladder = |chip: Chip| Machine::for_chip(chip).cpu.ladder_len();
        assert_eq!(per_chip(Chip::Broadwell), 2 * ladder(Chip::Broadwell) + 2);
        assert_eq!(per_chip(Chip::Skylake), 2 * ladder(Chip::Skylake) + 2);
        // The adaptive record dominates every fixed arm on its chip.
        for chip in [Chip::Broadwell, Chip::Skylake] {
            let adaptive = recs
                .iter()
                .find(|r| r.chip == chip && r.policy == "adaptive")
                .expect("adaptive record");
            for fixed in recs.iter().filter(|r| r.chip == chip && r.policy == "fixed") {
                assert!(
                    adaptive.dominates(fixed),
                    "{chip:?}: adaptive fails to dominate {}",
                    fixed.label
                );
            }
        }
    }
}
