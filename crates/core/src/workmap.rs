//! Mapping real compressor executions onto simulated work profiles.
//!
//! The experiments *actually run* the SZ and ZFP implementations on
//! (scaled-down) synthetic fields; what the hardware simulator needs is a
//! frequency-independent description of that work. [`CostModel`] converts
//! the compressors' operation counters into compute cycles and effective
//! memory-stall traffic, then scales the profile to the full-size dataset
//! the sample stands in for.
//!
//! Cycle costs are per-operation estimates for a modern out-of-order core;
//! the memory-stall factor is calibrated so compression is ≈52%
//! compute-bound at f_max — the split implied by the paper's observation
//! that a 12.5% clock reduction costs only ≈7.5% runtime (§V-A3). The
//! `ablation_cost_model` bench quantifies how sensitive the headline
//! results are to these constants.

use crate::records::Compressor;
use lcpio_codec::CodecStats;
use lcpio_powersim::WorkProfile;
use lcpio_sz::CompressionStats;
use lcpio_zfp::ZfpStats;
use serde::{Deserialize, Serialize};

/// Tunable cost constants for the stats → work-profile mapping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// SZ cycles per element (prediction + quantization + bookkeeping).
    pub sz_cycles_per_element: f64,
    /// Extra SZ cycles per unpredictable element (literal escape path).
    pub sz_cycles_per_literal: f64,
    /// SZ cycles per Huffman-coded output bit.
    pub sz_cycles_per_huffman_bit: f64,
    /// ZFP cycles per element (block transform + fixed point).
    pub zfp_cycles_per_element: f64,
    /// ZFP cycles per embedded-coded payload bit.
    pub zfp_cycles_per_payload_bit: f64,
    /// Effective memory-stall traffic per compute cycle (bytes/cycle).
    /// Covers cache misses and DRAM latency, not just streaming loads.
    pub stall_bytes_per_cycle: f64,
    /// Dynamic-power intensity of compression kernels.
    pub compression_intensity: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            sz_cycles_per_element: 24.0,
            sz_cycles_per_literal: 40.0,
            sz_cycles_per_huffman_bit: 0.5,
            zfp_cycles_per_element: 20.0,
            zfp_cycles_per_payload_bit: 0.6,
            stall_bytes_per_cycle: 5.4,
            compression_intensity: 1.0,
        }
    }
}

impl CostModel {
    /// Profile for a compression run of either codec, from the
    /// codec-neutral [`CodecStats`] the registry adapters report,
    /// extrapolated by `scale_factor` (full-size bytes / sample bytes).
    ///
    /// Applies exactly the per-codec formulas of [`CostModel::sz_profile`]
    /// / [`CostModel::zfp_profile`]: SZ literals arrive as
    /// `literal_elements` and Huffman bits as `coded_bits`; ZFP payload
    /// bits arrive as `coded_bits` (its literal count is zero, so the
    /// shared formula shape costs it nothing).
    pub fn compression_profile(
        &self,
        compressor: Compressor,
        stats: &CodecStats,
        scale_factor: f64,
    ) -> WorkProfile {
        let cycles = match compressor {
            Compressor::Sz => {
                self.sz_cycles_per_element * stats.elements as f64
                    + self.sz_cycles_per_literal * stats.literal_elements as f64
                    + self.sz_cycles_per_huffman_bit * stats.coded_bits as f64
            }
            Compressor::Zfp => {
                self.zfp_cycles_per_element * stats.elements as f64
                    + self.zfp_cycles_per_payload_bit * stats.coded_bits as f64
            }
        };
        self.finish(cycles, scale_factor)
    }

    /// Decompression is cheaper than compression for both codecs (no
    /// predictor search / no symbol histogramming); model it at 70% of
    /// [`CostModel::compression_profile`].
    pub fn decompression_profile(
        &self,
        compressor: Compressor,
        stats: &CodecStats,
        scale_factor: f64,
    ) -> WorkProfile {
        self.compression_profile(compressor, stats, scale_factor).scaled(0.7)
    }

    /// Profile for an SZ compression run, extrapolated by `scale_factor`
    /// (full-size bytes / sample bytes).
    pub fn sz_profile(&self, stats: &CompressionStats, scale_factor: f64) -> WorkProfile {
        let cycles = self.sz_cycles_per_element * stats.elements as f64
            + self.sz_cycles_per_literal * stats.unpredictable as f64
            + self.sz_cycles_per_huffman_bit * stats.huffman_bits as f64;
        self.finish(cycles, scale_factor)
    }

    /// Profile for a ZFP compression run.
    pub fn zfp_profile(&self, stats: &ZfpStats, scale_factor: f64) -> WorkProfile {
        let cycles = self.zfp_cycles_per_element * stats.elements as f64
            + self.zfp_cycles_per_payload_bit * stats.payload_bits as f64;
        self.finish(cycles, scale_factor)
    }

    /// Decompression is cheaper than compression for both codecs (no
    /// predictor search / no symbol histogramming); model it at 70%.
    pub fn sz_decompress_profile(&self, stats: &CompressionStats, scale: f64) -> WorkProfile {
        self.sz_profile(stats, scale).scaled(0.7)
    }

    fn finish(&self, cycles: f64, scale_factor: f64) -> WorkProfile {
        WorkProfile {
            compute_cycles: cycles,
            memory_bytes: cycles * self.stall_bytes_per_cycle,
            io_bytes: 0.0,
            compute_intensity: self.compression_intensity,
        }
        .scaled(scale_factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcpio_powersim::{simulate, Chip, Machine};

    fn sz_stats(elements: u64) -> CompressionStats {
        CompressionStats {
            elements,
            input_bytes: elements * 4,
            output_bytes: elements,
            predictable: elements * 95 / 100,
            unpredictable: elements * 5 / 100,
            huffman_bits: elements * 4,
            ..Default::default()
        }
    }

    #[test]
    fn sz_cycles_are_in_realistic_range() {
        let cm = CostModel::default();
        let p = cm.sz_profile(&sz_stats(1_000_000), 1.0);
        let cycles_per_elem = p.compute_cycles / 1e6;
        // Real single-core SZ runs at roughly 100–400 MB/s at 2 GHz,
        // i.e. ~20–80 cycles per element.
        assert!((20.0..80.0).contains(&cycles_per_elem), "{cycles_per_elem}");
    }

    #[test]
    fn compute_fraction_matches_paper_calibration() {
        let cm = CostModel::default();
        let p = cm.sz_profile(&sz_stats(1_000_000), 1.0);
        let m = Machine::for_chip(Chip::Broadwell);
        let meas = simulate(&m, 2.0, &p);
        let frac = meas.compute_s / meas.runtime_s;
        assert!((0.45..0.60).contains(&frac), "compute fraction {frac}");
    }

    #[test]
    fn scale_factor_extrapolates_linearly() {
        let cm = CostModel::default();
        let one = cm.sz_profile(&sz_stats(1000), 1.0);
        let big = cm.sz_profile(&sz_stats(1000), 512.0);
        assert!((big.compute_cycles / one.compute_cycles - 512.0).abs() < 1e-9);
        assert!((big.memory_bytes / one.memory_bytes - 512.0).abs() < 1e-9);
    }

    #[test]
    fn harder_data_costs_more_cycles() {
        let cm = CostModel::default();
        let easy = sz_stats(1000);
        let hard = CompressionStats {
            unpredictable: 500,
            predictable: 500,
            huffman_bits: 12_000,
            ..easy
        };
        assert!(
            cm.sz_profile(&hard, 1.0).compute_cycles > cm.sz_profile(&easy, 1.0).compute_cycles
        );
    }

    #[test]
    fn zfp_profile_tracks_payload() {
        let cm = CostModel::default();
        let small = ZfpStats { elements: 1000, payload_bits: 4000, ..Default::default() };
        let big = ZfpStats { elements: 1000, payload_bits: 32_000, ..Default::default() };
        assert!(cm.zfp_profile(&big, 1.0).compute_cycles > cm.zfp_profile(&small, 1.0).compute_cycles);
    }

    #[test]
    fn unified_profile_matches_legacy_sz_and_zfp_formulas() {
        let cm = CostModel::default();
        let sz = sz_stats(50_000);
        let unified = CodecStats {
            elements: sz.elements,
            input_bytes: sz.input_bytes,
            output_bytes: sz.output_bytes,
            literal_elements: sz.unpredictable,
            coded_bits: sz.huffman_bits,
        };
        let a = cm.sz_profile(&sz, 37.0);
        let b = cm.compression_profile(Compressor::Sz, &unified, 37.0);
        assert_eq!(a.compute_cycles, b.compute_cycles);
        assert_eq!(a.memory_bytes, b.memory_bytes);

        let zfp = ZfpStats { elements: 50_000, payload_bits: 240_000, ..Default::default() };
        let unified = CodecStats {
            elements: zfp.elements,
            coded_bits: zfp.payload_bits,
            ..Default::default()
        };
        let a = cm.zfp_profile(&zfp, 37.0);
        let b = cm.compression_profile(Compressor::Zfp, &unified, 37.0);
        assert_eq!(a.compute_cycles, b.compute_cycles);

        let d = cm.decompression_profile(Compressor::Zfp, &unified, 37.0);
        assert_eq!(d.compute_cycles, a.compute_cycles * 0.7);
    }

    #[test]
    fn decompression_is_cheaper() {
        let cm = CostModel::default();
        let s = sz_stats(10_000);
        assert!(
            cm.sz_decompress_profile(&s, 1.0).compute_cycles
                < cm.sz_profile(&s, 1.0).compute_cycles
        );
    }
}
