//! The 512 GB data-dump use case — Figure 6 (§VI-B).
//!
//! The paper compresses a 512 GB NYX `velocity_x` field with SZ at four
//! error bounds and writes the result to NFS over 10 GbE, once at the base
//! clock and once with Eqn-3 tuning (−12.5% for compression, −15% for the
//! write). Tuning saves 6.5 kJ (13%) on average across the bounds.

use crate::error::CoreError;
use crate::pipeline::{scaled_overlap, OverlapOutcome};
use crate::records::Compressor;
use crate::tuning::TuningRule;
use crate::workmap::CostModel;
use lcpio_codec::BoundSpec;
use lcpio_datagen::nyx;
use lcpio_powersim::{simulate, Chip, Machine};
use serde::{Deserialize, Serialize};

/// Configuration of the dump experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataDumpConfig {
    /// Total uncompressed volume (bytes); the paper uses 512 GB.
    pub total_bytes: f64,
    /// Error bounds to sweep (paper: 1e-1 … 1e-4).
    pub error_bounds: Vec<f64>,
    /// Chip to run on.
    pub chip: Chip,
    /// Compressor (paper: SZ; ZFP supported as an extension).
    pub compressor: Compressor,
    /// Side length of the NYX sample cube used to characterize the work.
    pub sample_side: usize,
    /// RNG seed.
    pub seed: u64,
    /// The tuning rule to compare against the base clock.
    pub rule: TuningRule,
    /// Cost-model constants.
    pub cost_model: CostModel,
    /// Worker threads for chunked SZ compression (0 = all available cores).
    pub threads: usize,
    /// Bounded-queue depth of the overlapped compress→write pipeline used
    /// for the per-row overlap accounting (1 = no overlap).
    pub queue_depth: usize,
}

impl DataDumpConfig {
    /// The paper's experiment.
    pub fn paper() -> Self {
        DataDumpConfig {
            total_bytes: 512e9,
            error_bounds: crate::experiment::PAPER_ERROR_BOUNDS.to_vec(),
            chip: Chip::Broadwell,
            compressor: Compressor::Sz,
            sample_side: 64,
            seed: 0x512,
            rule: TuningRule::PAPER,
            cost_model: CostModel::default(),
            threads: 0,
            queue_depth: 4,
        }
    }

    /// Small settings for tests.
    pub fn quick() -> Self {
        DataDumpConfig { sample_side: 24, error_bounds: vec![1e-1, 1e-4], ..Self::paper() }
    }
}

/// Energy breakdown of one (error bound, policy) cell of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseEnergy {
    /// Compression energy (J).
    pub compression_j: f64,
    /// Data-writing energy (J).
    pub writing_j: f64,
    /// Compression runtime (s).
    pub compression_s: f64,
    /// Writing runtime (s).
    pub writing_s: f64,
}

impl PhaseEnergy {
    /// Total energy (J).
    pub fn total_j(&self) -> f64 {
        self.compression_j + self.writing_j
    }

    /// Total runtime (s).
    pub fn total_s(&self) -> f64 {
        self.compression_s + self.writing_s
    }
}

/// One error-bound row of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DumpRow {
    /// Error bound.
    pub error_bound: f64,
    /// Compression ratio achieved on the sample.
    pub ratio: f64,
    /// Base-clock energies.
    pub base: PhaseEnergy,
    /// Eqn-3-tuned energies.
    pub tuned: PhaseEnergy,
    /// Overlapped-pipeline accounting at the base clock: same per-phase
    /// joules as [`DumpRow::base`], shorter wall time.
    pub base_overlap: OverlapOutcome,
    /// Overlapped-pipeline accounting at the Eqn-3 clocks.
    pub tuned_overlap: OverlapOutcome,
}

impl DumpRow {
    /// Energy saved by tuning (J).
    pub fn saved_j(&self) -> f64 {
        self.base.total_j() - self.tuned.total_j()
    }

    /// Fractional savings.
    pub fn savings(&self) -> f64 {
        self.saved_j() / self.base.total_j()
    }
}

/// Aggregate over the error bounds (the paper's "6.5 kJ, or 13%").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DumpSummary {
    /// Mean energy saved (J).
    pub mean_saved_j: f64,
    /// Mean fractional savings.
    pub mean_savings: f64,
}

/// Run the Figure 6 experiment.
///
/// Fails with [`CoreError`] when the sample field cannot be compressed
/// under the configured bound (e.g. a non-finite `error_bounds` entry).
pub fn run_data_dump(cfg: &DataDumpConfig) -> Result<(Vec<DumpRow>, DumpSummary), CoreError> {
    let _span = lcpio_trace::span("core.dump");
    let machine = Machine::for_chip(cfg.chip);
    let fmax = machine.cpu.f_max_ghz;
    let f_comp = machine.cpu.snap(cfg.rule.compression_fraction * fmax);
    let f_write = machine.cpu.snap(cfg.rule.writing_fraction * fmax);

    let field = nyx::velocity_x(cfg.sample_side, cfg.seed);
    let dims: Vec<usize> = field.dims().extents().to_vec();
    let scale_factor = cfg.total_bytes / field.sample_bytes() as f64;

    let mut rows = Vec::new();
    for &eb in &cfg.error_bounds {
        let out = cfg.compressor.codec().compress_chunked(
            &field.data,
            &dims,
            BoundSpec::Absolute(eb),
            cfg.threads,
        )?;
        let profile = cfg.cost_model.compression_profile(cfg.compressor, &out.stats, scale_factor);
        let ratio = out.stats.ratio();
        let compressed_bytes = cfg.total_bytes / ratio;
        let write = machine.nfs.write_profile(compressed_bytes);

        let energy_at = |fc: f64, fw: f64| -> PhaseEnergy {
            let c = simulate(&machine, fc, &profile);
            let w = simulate(&machine, fw, &write);
            PhaseEnergy {
                compression_j: c.energy_j,
                writing_j: w.energy_j,
                compression_s: c.runtime_s,
                writing_s: w.runtime_s,
            }
        };
        // Overlapped-pipeline accounting for the same dump: identical
        // per-phase joules, shorter wall time (queue_depth ≥ 2 lets
        // compression of chunk k+1 proceed while chunk k is on the wire).
        let overlap_at = |fc: f64, fw: f64| -> OverlapOutcome {
            scaled_overlap(
                &machine,
                fc,
                fw,
                &cfg.cost_model,
                cfg.compressor,
                &out.stats,
                cfg.total_bytes,
                cfg.queue_depth,
            )
        };
        let row = DumpRow {
            error_bound: eb,
            ratio,
            base: energy_at(fmax, fmax),
            tuned: energy_at(f_comp, f_write),
            base_overlap: overlap_at(fmax, fmax),
            tuned_overlap: overlap_at(f_comp, f_write),
        };
        if lcpio_trace::collecting() {
            lcpio_trace::counter_add(
                "core.dump.compression_uj",
                (row.base.compression_j * 1e6) as u64,
            );
            lcpio_trace::counter_add("core.dump.writing_uj", (row.base.writing_j * 1e6) as u64);
            lcpio_trace::counter_add("core.dump.saved_uj", (row.saved_j() * 1e6) as u64);
        }
        rows.push(row);
    }
    let n = rows.len().max(1) as f64;
    let summary = DumpSummary {
        mean_saved_j: rows.iter().map(|r| r.saved_j()).sum::<f64>() / n,
        mean_savings: rows.iter().map(|r| r.savings()).sum::<f64>() / n,
    };
    Ok((rows, summary))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuning_always_saves_energy() {
        let (rows, summary) = run_data_dump(&DataDumpConfig::quick()).expect("quick dump runs");
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.saved_j() > 0.0, "eb {}: no savings", r.error_bound);
        }
        assert!(summary.mean_saved_j > 0.0);
    }

    #[test]
    fn savings_fraction_matches_paper_band() {
        // Paper: 13% on average (6.5 kJ of ~50 kJ).
        let (_, summary) = run_data_dump(&DataDumpConfig::paper()).expect("paper dump runs");
        assert!(
            (0.06..0.20).contains(&summary.mean_savings),
            "savings {}",
            summary.mean_savings
        );
    }

    #[test]
    fn absolute_energy_is_tens_of_kilojoules() {
        // 512 GB of compression + writing lands in the 10–200 kJ decade —
        // same order as Figure 6's tens of kJ.
        let (rows, _) = run_data_dump(&DataDumpConfig::paper()).expect("paper dump runs");
        for r in &rows {
            let kj = r.base.total_j() / 1e3;
            assert!((10.0..400.0).contains(&kj), "eb {}: {kj} kJ", r.error_bound);
        }
    }

    #[test]
    fn finer_bounds_cost_more_energy_and_compress_less() {
        let (rows, _) = run_data_dump(&DataDumpConfig::paper()).expect("paper dump runs");
        // rows are ordered 1e-1 → 1e-4.
        assert!(rows.first().unwrap().ratio > rows.last().unwrap().ratio);
        assert!(rows.first().unwrap().base.total_j() < rows.last().unwrap().base.total_j());
    }

    #[test]
    fn writing_shrinks_with_compression_ratio() {
        let (rows, _) = run_data_dump(&DataDumpConfig::paper()).expect("paper dump runs");
        for r in &rows {
            // Compressed write must be much cheaper than compression for
            // high ratios.
            assert!(r.base.writing_j < r.base.compression_j, "eb {}", r.error_bound);
        }
    }

    #[test]
    fn overlap_conserves_per_phase_energy() {
        // Overlap changes wall time, never joules: each row's pipelined
        // per-phase energies must sum to the sequential accounting within
        // the chunk-count rounding (ceil(total/sample) vs exact ratio).
        let (rows, _) = run_data_dump(&DataDumpConfig::paper()).expect("paper dump runs");
        for r in &rows {
            for (seq, ovl) in [(&r.base, &r.base_overlap), (&r.tuned, &r.tuned_overlap)] {
                let rel = |a: f64, b: f64| (a - b).abs() / b.max(1e-12);
                assert!(rel(ovl.compression_j, seq.compression_j) < 1e-4, "eb {}", r.error_bound);
                assert!(rel(ovl.writing_j, seq.writing_j) < 1e-4, "eb {}", r.error_bound);
                assert!(rel(ovl.total_j(), seq.total_j()) < 1e-4, "eb {}", r.error_bound);
                assert!(rel(ovl.sequential_s, seq.total_s()) < 1e-4, "eb {}", r.error_bound);
            }
        }
    }

    #[test]
    fn overlap_beats_sequential_wall_clock() {
        let cfg = DataDumpConfig::paper(); // queue_depth 4
        let (rows, _) = run_data_dump(&cfg).expect("paper dump runs");
        for r in &rows {
            for ovl in [&r.base_overlap, &r.tuned_overlap] {
                assert!(ovl.speedup() > 1.0, "eb {}: speedup {}", r.error_bound, ovl.speedup());
                // Bounded below by the slower stage's busy time.
                assert!(ovl.pipelined_s < ovl.sequential_s);
            }
        }
    }

    #[test]
    fn depth_one_pipeline_degenerates_to_sequential() {
        let cfg = DataDumpConfig { queue_depth: 1, ..DataDumpConfig::quick() };
        let (rows, _) = run_data_dump(&cfg).expect("quick dump runs");
        for r in &rows {
            // With one queue slot the next compression waits for the
            // previous write: no overlap at all.
            let rel =
                (r.base_overlap.pipelined_s - r.base_overlap.sequential_s).abs() / r.base_overlap.sequential_s;
            assert!(rel < 1e-9, "eb {}", r.error_bound);
        }
    }

    #[test]
    fn sequential_rows_match_direct_simulation() {
        // Regression pin: wiring the overlapped pipeline into the driver
        // must not perturb the Figure-6 sequential numbers. Recompute one
        // row from scratch and require bitwise equality.
        let cfg = DataDumpConfig::quick();
        let (rows, _) = run_data_dump(&cfg).expect("quick dump runs");
        let machine = Machine::for_chip(cfg.chip);
        let field = lcpio_datagen::nyx::velocity_x(cfg.sample_side, cfg.seed);
        let dims: Vec<usize> = field.dims().extents().to_vec();
        let scale_factor = cfg.total_bytes / field.sample_bytes() as f64;
        let eb = cfg.error_bounds[0];
        let out = cfg
            .compressor
            .codec()
            .compress_chunked(&field.data, &dims, BoundSpec::Absolute(eb), cfg.threads)
            .expect("sample compresses");
        let profile = cfg.cost_model.compression_profile(cfg.compressor, &out.stats, scale_factor);
        let write = machine.nfs.write_profile(cfg.total_bytes / out.stats.ratio());
        let c = simulate(&machine, machine.cpu.f_max_ghz, &profile);
        let w = simulate(&machine, machine.cpu.f_max_ghz, &write);
        assert_eq!(rows[0].base.compression_j, c.energy_j);
        assert_eq!(rows[0].base.writing_j, w.energy_j);
        assert_eq!(rows[0].base.compression_s, c.runtime_s);
        assert_eq!(rows[0].base.writing_s, w.runtime_s);
    }

    #[test]
    fn zfp_variant_also_saves() {
        let cfg = DataDumpConfig {
            compressor: Compressor::Zfp,
            ..DataDumpConfig::quick()
        };
        let (_, summary) = run_data_dump(&cfg).expect("dump runs");
        assert!(summary.mean_savings > 0.0);
    }
}
