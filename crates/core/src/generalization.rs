//! Generalization study (extension): does the tuning methodology hold on a
//! CPU outside the regression set?
//!
//! The paper closes §VI-B with "future studies will strive to address
//! whether these trends hold on different CPUs". The simulator makes that
//! study runnable today: sweep the same workloads on the hypothetical
//! [`Chip::EpycLike`] part, fit the same model family, derive a rule from
//! *that chip's own curves*, and compare it against blindly applying the
//! paper's Eqn 3.

use crate::characteristics::{compression_power_curves, compression_runtime_curves};
use crate::experiment::{run_compression_sweep, ExperimentConfig};
use crate::models::ModelRow;
use crate::tuning::{evaluate_rule, optimal_fraction, TuningReport, TuningRule};
use lcpio_fit::powerlaw::fit_power_law;
use lcpio_powersim::Chip;
use serde::{Deserialize, Serialize};

/// Outcome of the generalization study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneralizationResult {
    /// Power model fitted on the new chip's sweep.
    pub model: ModelRow,
    /// What the paper's Eqn 3 achieves on the new chip.
    pub paper_rule: TuningReport,
    /// The rule derived from the new chip's own curves.
    pub native_rule: TuningRule,
    /// What the native rule achieves.
    pub native_report: TuningReport,
}

/// Run the study: sweep [`Chip::EpycLike`] with the given experiment
/// settings (datasets, bounds, reps are reused; chips are overridden).
pub fn run_generalization(base_cfg: &ExperimentConfig) -> GeneralizationResult {
    let mut cfg = base_cfg.clone();
    cfg.chips = vec![Chip::EpycLike];
    let recs = run_compression_sweep(&cfg);

    // Fit the scaled power curve of the new chip.
    let curves = compression_power_curves(&recs);
    let runtime = compression_runtime_curves(&recs);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for c in &curves {
        for p in &c.points {
            xs.push(p.f_ghz);
            ys.push(p.mean);
        }
    }
    let fit = fit_power_law(&xs, &ys).expect("sweep produces fittable data");

    let paper_rule = evaluate_rule(TuningRule::PAPER, &curves, &runtime, &[], &[]);
    let native_fraction = optimal_fraction(&curves, &runtime, 0.10);
    let native_rule = TuningRule {
        compression_fraction: native_fraction,
        writing_fraction: TuningRule::PAPER.writing_fraction,
    };
    let native_report = evaluate_rule(native_rule, &curves, &runtime, &[], &[]);

    GeneralizationResult {
        model: ModelRow { name: Chip::EpycLike.name().to_string(), fit },
        paper_rule,
        native_rule,
        native_report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_result() -> GeneralizationResult {
        let mut cfg = ExperimentConfig::quick();
        cfg.datasets = vec![lcpio_datagen::Dataset::Nyx];
        run_generalization(&cfg)
    }

    #[test]
    fn model_family_fits_the_new_chip() {
        let r = quick_result();
        // Same functional form applies: finite parameters, sane offset,
        // low residual error.
        assert!(r.model.fit.b > 1.0, "b={}", r.model.fit.b);
        assert!((0.3..1.0).contains(&r.model.fit.c), "c={}", r.model.fit.c);
        assert!(r.model.fit.gof.rmse < 0.06, "rmse={}", r.model.fit.gof.rmse);
    }

    #[test]
    fn paper_rule_transfers_with_positive_savings() {
        let r = quick_result();
        assert!(
            r.paper_rule.compression_power_savings > 0.03,
            "savings {}",
            r.paper_rule.compression_power_savings
        );
        assert!(r.paper_rule.compression_runtime_increase < 0.12);
    }

    #[test]
    fn native_rule_is_at_least_as_good_as_paper_rule() {
        let r = quick_result();
        assert!(
            r.native_report.compression_energy_savings
                >= r.paper_rule.compression_energy_savings - 0.01,
            "native {} vs paper {}",
            r.native_report.compression_energy_savings,
            r.paper_rule.compression_energy_savings
        );
    }
}
