//! Experiment provenance: manifests that make sweep artifacts auditable.
//!
//! EXPERIMENTS.md records paper-vs-measured numbers; a reviewer must be
//! able to tell *which* configuration produced a saved sweep and re-run it
//! bit-for-bit. A [`RunManifest`] captures the full configuration, a
//! stable digest of it, and a digest of the results.

use crate::experiment::{ExperimentConfig, SweepResult};
use serde::{Deserialize, Serialize};

/// FNV-1a 64-bit digest — small, dependency-free, and stable across runs
/// (this is an integrity/identity check, not a cryptographic one).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Everything needed to identify and reproduce one sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunManifest {
    /// Library version that produced the run.
    pub version: String,
    /// The exact configuration.
    pub config: ExperimentConfig,
    /// Digest of the serialized configuration.
    pub config_digest: u64,
    /// Digest of the serialized results.
    pub result_digest: u64,
    /// Record counts, for quick sanity checks.
    pub compression_records: usize,
    /// Transit record count.
    pub transit_records: usize,
}

impl RunManifest {
    /// Build a manifest for a (config, result) pair.
    pub fn new(config: &ExperimentConfig, result: &SweepResult) -> RunManifest {
        let cfg_json = serde_json::to_vec(config).expect("config serializes");
        let res_json = serde_json::to_vec(result).expect("result serializes");
        RunManifest {
            version: env!("CARGO_PKG_VERSION").to_string(),
            config: config.clone(),
            config_digest: fnv1a(&cfg_json),
            result_digest: fnv1a(&res_json),
            compression_records: result.compression.len(),
            transit_records: result.transit.len(),
        }
    }

    /// Check a result against this manifest's digests.
    pub fn verify(&self, result: &SweepResult) -> bool {
        let res_json = serde_json::to_vec(result).expect("result serializes");
        fnv1a(&res_json) == self.result_digest
            && result.compression.len() == self.compression_records
            && result.transit.len() == self.transit_records
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("manifest serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::run_full_sweep;

    fn tiny_config() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::quick();
        cfg.datasets = vec![lcpio_datagen::Dataset::Nyx];
        cfg.compressors = vec![crate::records::Compressor::Sz];
        cfg.error_bounds = vec![1e-2];
        cfg.transit_gb = vec![1.0];
        cfg
    }

    #[test]
    fn fnv_is_stable_and_discriminating() {
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"abc"), fnv1a(b"abc"));
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
    }

    #[test]
    fn manifest_verifies_its_own_run() {
        let cfg = tiny_config();
        let sweep = run_full_sweep(&cfg);
        let manifest = RunManifest::new(&cfg, &sweep);
        assert!(manifest.verify(&sweep));
        assert_eq!(manifest.compression_records, sweep.compression.len());
    }

    #[test]
    fn manifest_catches_tampering() {
        let cfg = tiny_config();
        let sweep = run_full_sweep(&cfg);
        let manifest = RunManifest::new(&cfg, &sweep);
        let mut forged = sweep.clone();
        forged.compression[0].power_w *= 1.001;
        assert!(!manifest.verify(&forged));
    }

    #[test]
    fn reruns_of_the_same_config_verify() {
        // Determinism end-to-end: a fresh run of the same config matches
        // the digest of the recorded one.
        let cfg = tiny_config();
        let manifest = RunManifest::new(&cfg, &run_full_sweep(&cfg));
        let again = run_full_sweep(&cfg);
        assert!(manifest.verify(&again));
    }

    #[test]
    fn different_configs_have_different_digests() {
        let a = tiny_config();
        let mut b = tiny_config();
        b.seed ^= 1;
        let ma = RunManifest::new(&a, &run_full_sweep(&a));
        let mb = RunManifest::new(&b, &run_full_sweep(&b));
        assert_ne!(ma.config_digest, mb.config_digest);
        assert_ne!(ma.result_digest, mb.result_digest);
    }

    #[test]
    fn manifest_json_roundtrips() {
        let cfg = tiny_config();
        let m = RunManifest::new(&cfg, &run_full_sweep(&cfg));
        let back: RunManifest = serde_json::from_str(&m.to_json()).expect("roundtrip");
        assert_eq!(back.config_digest, m.config_digest);
        assert_eq!(back.result_digest, m.result_digest);
    }
}
