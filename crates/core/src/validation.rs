//! Model validation on unseen data — Figure 5 (§VI-A).
//!
//! The paper tests its Broadwell power model against Hurricane-ISABEL: six
//! 95 MB fields (PRECIP, P, TC, U, V, W), compressed with SZ and ZFP at a
//! 1e-4 error bound — data never used in the regression. It reports
//! SSE = 0.1463 and RMSE = 0.0256 for the model over the new measurements.

use crate::characteristics::{CurvePoint, CurveSeries};
use crate::records::Compressor;
use crate::workmap::CostModel;
use lcpio_datagen::isabel::{self, IsabelField};
use lcpio_fit::powerlaw::PowerLawFit;
use lcpio_fit::GoodnessOfFit;
use lcpio_powersim::{Chip, Machine, Perf};
use lcpio_codec::BoundSpec;
use serde::{Deserialize, Serialize};

/// Configuration for the ISABEL validation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ValidationConfig {
    /// Element-count divisor for the ISABEL sample fields.
    pub scale: usize,
    /// RNG seed.
    pub seed: u64,
    /// Repetitions per frequency point.
    pub reps: u32,
    /// Error bound (paper: 1e-4).
    pub error_bound: f64,
    /// Measurement noise σ.
    pub noise_sigma: f64,
    /// Cost-model constants.
    pub cost_model: CostModel,
}

impl ValidationConfig {
    /// Paper settings on a fast sample size. `scale` is the linear divisor
    /// applied to ISABEL's horizontal extents (4 ⇒ 100×125×125 samples).
    pub fn paper() -> Self {
        ValidationConfig {
            scale: 4,
            seed: 0x15ABE1,
            reps: 10,
            error_bound: 1e-4,
            noise_sigma: lcpio_powersim::DEFAULT_NOISE_SIGMA,
            cost_model: CostModel::default(),
        }
    }

    /// Small settings for tests (25×31×31 samples).
    pub fn quick() -> Self {
        ValidationConfig { scale: 16, reps: 3, ..Self::paper() }
    }
}

/// Outcome of validating a fitted model on the ISABEL sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ValidationResult {
    /// GF of the model against the new measurements (the paper's
    /// SSE = 0.1463, RMSE = 0.0256).
    pub gof: GoodnessOfFit,
    /// Mean measured scaled-power curve across fields/compressors.
    pub measured: CurveSeries,
    /// The model's predicted curve over the same ladder.
    pub predicted: CurveSeries,
}

/// Run the §VI-A experiment: sweep the six ISABEL fields on Broadwell with
/// both compressors, scale the power, and score `model` on the result.
pub fn validate_on_isabel(cfg: &ValidationConfig, model: &PowerLawFit) -> ValidationResult {
    let machine = Machine::for_chip(Chip::Broadwell);
    let spec = machine.cpu;
    let ladder: Vec<f64> = spec.ladder().collect();

    let lin = cfg.scale.max(1);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    let mut sums = vec![0.0f64; ladder.len()];
    let mut count = 0usize;

    for (fi, field_id) in IsabelField::ALL.iter().enumerate() {
        let field = isabel::generate_scaled(lin, cfg.seed ^ fi as u64, *field_id);
        let dims: Vec<usize> = field.dims().extents().to_vec();
        // The paper's six 95 MB fields.
        let full_bytes = 100.0 * 500.0 * 500.0 * 4.0;
        let scale_factor = full_bytes / field.sample_bytes() as f64;
        for comp in Compressor::ALL {
            let out = comp
                .codec()
                .compress(&field.data, &dims, BoundSpec::Absolute(cfg.error_bound))
                .expect("ISABEL fields always compress");
            let profile = cfg.cost_model.compression_profile(comp, &out.stats, scale_factor);
            let mut perf = Perf::with_sigma(
                cfg.seed ^ ((fi as u64) << 16) ^ (comp as u64),
                cfg.noise_sigma,
            );
            let stats: Vec<f64> = ladder
                .iter()
                .map(|&f| perf.measure(&machine, f, &profile, cfg.reps).power_w)
                .collect();
            let base = *stats.last().expect("ladder is nonempty");
            for (i, (&f, &p)) in ladder.iter().zip(&stats).enumerate() {
                let scaled = p / base;
                xs.push(f);
                ys.push(scaled);
                sums[i] += scaled;
            }
            count += 1;
        }
    }

    let gof = model.validate(&xs, &ys);
    let measured = CurveSeries {
        label: "ISABEL measured".to_string(),
        chip: Chip::Broadwell,
        points: ladder
            .iter()
            .zip(&sums)
            .map(|(&f, &s)| CurvePoint { f_ghz: f, mean: s / count as f64, ci95: 0.0 })
            .collect(),
    };
    let predicted = CurveSeries {
        label: "Broadwell model".to_string(),
        chip: Chip::Broadwell,
        points: ladder
            .iter()
            .map(|&f| CurvePoint { f_ghz: f, mean: model.eval(f), ci95: 0.0 })
            .collect(),
    };
    ValidationResult { gof, measured, predicted }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{run_compression_sweep, ExperimentConfig};
    use crate::models::{compression_model_table, row};

    #[test]
    fn broadwell_model_generalizes_to_isabel() {
        // Fit on CESM/HACC/NYX, validate on ISABEL — like the paper.
        let sweep = run_compression_sweep(&ExperimentConfig::quick());
        let t4 = compression_model_table(&sweep);
        let bd = row(&t4, "Broadwell").unwrap();
        let result = validate_on_isabel(&ValidationConfig::quick(), &bd.fit);
        // Paper: SSE 0.1463, RMSE 0.0256 — "estimates the data well with
        // little error". Require the same order of magnitude.
        assert!(result.gof.rmse < 0.08, "rmse {}", result.gof.rmse);
        assert!(result.gof.sse < 1.0, "sse {}", result.gof.sse);
    }

    #[test]
    fn measured_and_predicted_curves_cover_the_ladder() {
        let sweep = run_compression_sweep(&ExperimentConfig::quick());
        let t4 = compression_model_table(&sweep);
        let bd = row(&t4, "Broadwell").unwrap();
        let result = validate_on_isabel(&ValidationConfig::quick(), &bd.fit);
        assert_eq!(result.measured.points.len(), 25);
        assert_eq!(result.predicted.points.len(), 25);
        // Measured curve is normalized at f_max.
        assert!((result.measured.at_fmax() - 1.0).abs() < 0.05);
    }

    #[test]
    fn a_wrong_model_scores_much_worse() {
        let sweep = run_compression_sweep(&ExperimentConfig::quick());
        let t4 = compression_model_table(&sweep);
        let good = row(&t4, "Broadwell").unwrap().fit;
        let bad = lcpio_fit::PowerLawFit { a: 0.5, b: 1.0, c: 0.2, ..good };
        let cfg = ValidationConfig::quick();
        let g = validate_on_isabel(&cfg, &good).gof;
        let b = validate_on_isabel(&cfg, &bad).gof;
        assert!(b.sse > 5.0 * g.sse, "good {} bad {}", g.sse, b.sse);
    }
}
