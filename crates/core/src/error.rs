//! Error type for the experiment drivers.
//!
//! The drivers really compress sample fields, so codec failures (a bad
//! error bound in a config, a degenerate sample) must surface to callers
//! instead of aborting the process from library code.

use lcpio_codec::CodecError;
use lcpio_sz::SzError;
use lcpio_zfp::ZfpError;

/// A permanent failure in the streaming pipeline.
///
/// Produced after the writer stage exhausts its bounded retries (or a
/// config knob is degenerate). The message carries the underlying I/O
/// detail as a string so the error stays `Clone + PartialEq + Eq` like
/// the rest of [`CoreError`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineError {
    /// Chunk sequence number the pipeline failed on.
    pub chunk: usize,
    /// Write attempts made before giving up.
    pub attempts: u32,
    /// Human-readable detail (last sink error, or the rejected knob).
    pub message: String,
}

impl PipelineError {
    /// Build a pipeline error for `chunk` after `attempts` tries.
    pub fn new(chunk: usize, attempts: u32, message: impl Into<String>) -> Self {
        PipelineError { chunk, attempts, message: message.into() }
    }
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pipeline failed at chunk {}: {}", self.chunk, self.message)
    }
}

/// An error from one of the experiment drivers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// SZ compression of a sample field failed.
    Sz(SzError),
    /// ZFP compression of a sample field failed.
    Zfp(ZfpError),
    /// The codec abstraction rejected the request (unsupported bound,
    /// unknown container, …); the message carries the detail.
    Codec(String),
    /// The streaming pipeline failed permanently (writer retries
    /// exhausted, or a degenerate config).
    Pipeline(PipelineError),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Sz(e) => write!(f, "sz compression failed: {e}"),
            CoreError::Zfp(e) => write!(f, "zfp compression failed: {e}"),
            CoreError::Codec(msg) => write!(f, "codec error: {msg}"),
            CoreError::Pipeline(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Sz(e) => Some(e),
            CoreError::Zfp(e) => Some(e),
            CoreError::Codec(_) | CoreError::Pipeline(_) => None,
        }
    }
}

impl From<SzError> for CoreError {
    fn from(e: SzError) -> Self {
        CoreError::Sz(e)
    }
}

impl From<ZfpError> for CoreError {
    fn from(e: ZfpError) -> Self {
        CoreError::Zfp(e)
    }
}

impl From<CodecError> for CoreError {
    fn from(e: CodecError) -> Self {
        // Backend failures keep their historical variants (and Display
        // strings); only abstraction-level failures take the new one.
        match e {
            CodecError::Sz(e) => CoreError::Sz(e),
            CodecError::Zfp(e) => CoreError::Zfp(e),
            other => CoreError::Codec(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_forward_to_codec_error() {
        let e = CoreError::from(SzError::InvalidDims);
        assert!(e.to_string().contains("sz compression failed"));
        assert!(std::error::Error::source(&e).is_some());
        let e = CoreError::from(ZfpError::InvalidDims);
        assert!(e.to_string().contains("zfp compression failed"));
    }

    #[test]
    fn codec_errors_map_onto_historical_variants() {
        use lcpio_codec::BoundSpec;
        assert_eq!(
            CoreError::from(CodecError::Sz(SzError::InvalidDims)),
            CoreError::Sz(SzError::InvalidDims)
        );
        assert_eq!(
            CoreError::from(CodecError::Zfp(ZfpError::InvalidMode)),
            CoreError::Zfp(ZfpError::InvalidMode)
        );
        let e = CoreError::from(CodecError::UnsupportedBound {
            codec: "zfp",
            bound: BoundSpec::PointwiseRelative(1e-3),
        });
        assert!(matches!(&e, CoreError::Codec(msg) if msg.contains("zfp")));
    }
}
