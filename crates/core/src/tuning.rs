//! Frequency tuning for energy savings — Eqn 3 and §V/§VI.
//!
//! The paper's recommendation:
//!
//! ```text
//! f_IO = 0.875·f_max   during lossy compression
//!        0.85 ·f_max   during data writing
//! ```
//!
//! [`TuningRule::PAPER`] encodes it; [`evaluate_rule`] measures what a rule
//! actually buys on a sweep (power savings, runtime increase, energy
//! savings — the §V-A3 numbers); [`derive_rule`] searches the measured
//! curves for the energy-optimal fractions, the "model-based tuning" the
//! paper performs with its fitted equations.

use crate::characteristics::CurveSeries;
use serde::{Deserialize, Serialize};

/// A frequency-tuning policy, as fractions of each chip's `f_max`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TuningRule {
    /// Fraction of `f_max` to pin during lossy compression.
    pub compression_fraction: f64,
    /// Fraction of `f_max` to pin during data writing.
    pub writing_fraction: f64,
}

impl TuningRule {
    /// The paper's Eqn 3: 12.5% reduction for compression, 15% for writing.
    pub const PAPER: TuningRule =
        TuningRule { compression_fraction: 0.875, writing_fraction: 0.85 };
}

/// What a tuning rule achieves on measured characteristic curves.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TuningReport {
    /// Mean power savings during compression (paper: ≈19.4%).
    pub compression_power_savings: f64,
    /// Mean runtime increase during compression (paper: ≈7.5%).
    pub compression_runtime_increase: f64,
    /// Mean energy savings during compression.
    pub compression_energy_savings: f64,
    /// Mean power savings during data writing (paper: ≈11.2%).
    pub writing_power_savings: f64,
    /// Mean runtime increase during data writing (paper: ≈9.3%).
    pub writing_runtime_increase: f64,
    /// Mean energy savings during data writing.
    pub writing_energy_savings: f64,
}

impl TuningReport {
    /// The paper's headline: the average of the two power-savings figures
    /// (§V-A3 calls this "14.3% energy savings ... on average").
    pub fn combined_savings(&self) -> f64 {
        (self.compression_power_savings + self.writing_power_savings) / 2.0
    }

    /// Average runtime increase across the two phases (paper: ≈8.4%).
    pub fn combined_runtime_increase(&self) -> f64 {
        (self.compression_runtime_increase + self.writing_runtime_increase) / 2.0
    }
}

/// Mean scaled value across series at `fraction`·f_max of each series' chip.
fn mean_at_fraction(curves: &[CurveSeries], fraction: f64) -> f64 {
    if curves.is_empty() {
        return f64::NAN;
    }
    let sum: f64 = curves
        .iter()
        .map(|c| {
            let fmax = c.chip.spec().f_max_ghz;
            c.value_at(fraction * fmax)
        })
        .sum();
    sum / curves.len() as f64
}

/// Evaluate a rule against measured scaled power/runtime curves.
///
/// `comp_power`/`comp_runtime` are the Figure 1/2 series; `write_power`/
/// `write_runtime` the Figure 3/4 series. Scaled values at f_max are 1 by
/// construction, so savings are simply `1 − value(frac·f_max)`.
pub fn evaluate_rule(
    rule: TuningRule,
    comp_power: &[CurveSeries],
    comp_runtime: &[CurveSeries],
    write_power: &[CurveSeries],
    write_runtime: &[CurveSeries],
) -> TuningReport {
    let cp = mean_at_fraction(comp_power, rule.compression_fraction);
    let cr = mean_at_fraction(comp_runtime, rule.compression_fraction);
    let wp = mean_at_fraction(write_power, rule.writing_fraction);
    let wr = mean_at_fraction(write_runtime, rule.writing_fraction);
    TuningReport {
        compression_power_savings: 1.0 - cp,
        compression_runtime_increase: cr - 1.0,
        compression_energy_savings: 1.0 - cp * cr,
        writing_power_savings: 1.0 - wp,
        writing_runtime_increase: wr - 1.0,
        writing_energy_savings: 1.0 - wp * wr,
    }
}

/// Search the energy-optimal frequency fraction on measured curves
/// (scaled energy = scaled power × scaled runtime), constrained to at most
/// `max_runtime_increase` (e.g. 0.10 for "at most 10% slower").
pub fn optimal_fraction(
    power: &[CurveSeries],
    runtime: &[CurveSeries],
    max_runtime_increase: f64,
) -> f64 {
    let mut best = (1.0, 1.0); // (fraction, scaled energy)
    let mut frac = 0.70;
    while frac <= 1.0 + 1e-9 {
        let p = mean_at_fraction(power, frac);
        let t = mean_at_fraction(runtime, frac);
        if t - 1.0 <= max_runtime_increase {
            let e = p * t;
            if e < best.1 {
                best = (frac, e);
            }
        }
        frac += 0.0125;
    }
    best.0
}

/// Derive a tuning rule from measured curves: the paper's model-based
/// tuning, with its implicit runtime tolerance (§V-A3 accepts ≤ ~10%).
pub fn derive_rule(
    comp_power: &[CurveSeries],
    comp_runtime: &[CurveSeries],
    write_power: &[CurveSeries],
    write_runtime: &[CurveSeries],
) -> TuningRule {
    TuningRule {
        compression_fraction: optimal_fraction(comp_power, comp_runtime, 0.10),
        writing_fraction: optimal_fraction(write_power, write_runtime, 0.10),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characteristics::{
        compression_power_curves, compression_runtime_curves, transit_power_curves,
        transit_runtime_curves,
    };
    use crate::experiment::{run_compression_sweep, run_transit_sweep, ExperimentConfig};

    fn full_report() -> TuningReport {
        let cfg = ExperimentConfig::quick();
        let comp = run_compression_sweep(&cfg);
        let tran = run_transit_sweep(&cfg);
        evaluate_rule(
            TuningRule::PAPER,
            &compression_power_curves(&comp),
            &compression_runtime_curves(&comp),
            &transit_power_curves(&tran),
            &transit_runtime_curves(&tran),
        )
    }

    #[test]
    fn paper_rule_constants() {
        assert_eq!(TuningRule::PAPER.compression_fraction, 0.875);
        assert_eq!(TuningRule::PAPER.writing_fraction, 0.85);
    }

    #[test]
    fn compression_savings_match_paper_band() {
        // Paper §V-A1: ≈19.4% power savings (13% by its own fitted model);
        // accept a 10–25% reproduction band.
        let r = full_report();
        assert!(
            (0.10..0.25).contains(&r.compression_power_savings),
            "compression power savings {}",
            r.compression_power_savings
        );
    }

    #[test]
    fn compression_runtime_increase_is_single_digit() {
        // Paper §V-A3: +7.5% net runtime.
        let r = full_report();
        assert!(
            (0.02..0.12).contains(&r.compression_runtime_increase),
            "runtime increase {}",
            r.compression_runtime_increase
        );
    }

    #[test]
    fn writing_savings_match_paper_band() {
        // Paper §V-A1: ≈11.2% power savings at −15% frequency.
        let r = full_report();
        assert!(
            (0.04..0.18).contains(&r.writing_power_savings),
            "writing power savings {}",
            r.writing_power_savings
        );
        // Paper §V-A3: +9.3% runtime (Broadwell-dominated; Skylake is
        // stagnant, pulling the average down).
        assert!(
            (0.0..0.12).contains(&r.writing_runtime_increase),
            "writing runtime increase {}",
            r.writing_runtime_increase
        );
    }

    #[test]
    fn combined_savings_match_headline() {
        // Paper abstract: 14.3% average savings, +8.4% runtime.
        let r = full_report();
        assert!(
            (0.08..0.20).contains(&r.combined_savings()),
            "combined savings {}",
            r.combined_savings()
        );
        assert!(
            (0.0..0.12).contains(&r.combined_runtime_increase()),
            "combined runtime {}",
            r.combined_runtime_increase()
        );
    }

    #[test]
    fn energy_savings_are_positive_for_compression() {
        let r = full_report();
        assert!(r.compression_energy_savings > 0.03, "{}", r.compression_energy_savings);
    }

    #[test]
    fn derived_rule_lands_near_eqn3() {
        let cfg = ExperimentConfig::quick();
        let comp = run_compression_sweep(&cfg);
        let tran = run_transit_sweep(&cfg);
        let rule = derive_rule(
            &compression_power_curves(&comp),
            &compression_runtime_curves(&comp),
            &transit_power_curves(&tran),
            &transit_runtime_curves(&tran),
        );
        // The search should recommend a clear reduction, in the broad
        // vicinity of the paper's 0.875 / 0.85.
        assert!(
            (0.72..0.95).contains(&rule.compression_fraction),
            "compression fraction {}",
            rule.compression_fraction
        );
        assert!(
            (0.72..0.97).contains(&rule.writing_fraction),
            "writing fraction {}",
            rule.writing_fraction
        );
    }

    #[test]
    fn optimal_fraction_respects_runtime_cap() {
        let cfg = ExperimentConfig::quick();
        let comp = run_compression_sweep(&cfg);
        let power = compression_power_curves(&comp);
        let runtime = compression_runtime_curves(&comp);
        let frac = optimal_fraction(&power, &runtime, 0.05);
        let t = mean_at_fraction(&runtime, frac);
        assert!(t - 1.0 <= 0.05 + 1e-9, "runtime increase {}", t - 1.0);
    }
}
