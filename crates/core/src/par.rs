//! Shared scoped worker pool for sweep fan-out.
//!
//! Every parallel stage in the experiment pipeline has the same shape:
//! a fixed list of independent jobs, workers pulling indices from an
//! atomic cursor, and results landing in index-order slots so output is
//! deterministic regardless of scheduling. This module is that shape,
//! extracted once; `run_compression_sweep` and `run_transit_sweep` both
//! use it instead of growing their own inline pools.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolve a thread-count request: 0 means "all available cores".
pub fn effective_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4)
    } else {
        threads
    }
}

/// Apply `f` to every item on up to `threads` scoped workers (0 ⇒ all
/// cores), returning results in item order. Panics in `f` propagate when
/// the scope joins. Falls back to a plain sequential map for one worker
/// or tiny inputs, so callers never pay thread spawn cost needlessly.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = effective_threads(threads).min(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= items.len() {
                    break;
                }
                let r = f(i, &items[i]);
                *slots[i].lock().expect("slot lock") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("slot lock").expect("every job filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn preserves_item_order() {
        let items: Vec<u32> = (0..100).collect();
        for threads in [0, 1, 3, 8] {
            let out = par_map(&items, threads, |i, &x| (i as u32, x * 2));
            assert_eq!(out.len(), items.len());
            for (i, (idx, doubled)) in out.iter().enumerate() {
                assert_eq!(*idx as usize, i);
                assert_eq!(*doubled, items[i] * 2);
            }
        }
    }

    #[test]
    fn runs_every_job_exactly_once() {
        let calls = AtomicU32::new(0);
        let items: Vec<usize> = (0..57).collect();
        let out = par_map(&items, 4, |_, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out, items);
        assert_eq!(calls.load(Ordering::Relaxed), 57);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u8> = par_map(&[] as &[u8], 4, |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn effective_threads_resolves_auto() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }
}
