//! Plain-text rendering of the paper's tables and figures.
//!
//! Every bench target prints through these helpers so `cargo bench` output
//! can be diffed against the paper side by side.

use crate::characteristics::CurveSeries;
use crate::datadump::DumpRow;
use crate::models::ModelRow;
use crate::tuning::TuningReport;

/// Render a Table IV/V-style model table.
pub fn render_model_table(title: &str, rows: &[ModelRow]) -> String {
    let mut s = String::new();
    s.push_str(&format!("{title}\n"));
    s.push_str(&format!(
        "{:<11} {:<28} {:>10} {:>9} {:>8}\n",
        "Model Data", "P(f)", "SSE", "RMSE", "R^2"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<11} {:<28} {:>10.4} {:>9.4} {:>8.4}\n",
            r.name,
            r.fit.equation(),
            r.fit.gof.sse,
            r.fit.gof.rmse,
            r.fit.gof.r2
        ));
    }
    s
}

/// Render characteristic curves as aligned columns (one block per series).
pub fn render_curves(title: &str, curves: &[CurveSeries]) -> String {
    let mut s = String::new();
    s.push_str(&format!("{title}\n"));
    for c in curves {
        s.push_str(&format!("  series {:<18} (floor {:.3})\n", c.label, c.floor()));
        s.push_str(&format!("    {:>6} {:>8} {:>8}\n", "f_GHz", "mean", "ci95"));
        for p in &c.points {
            s.push_str(&format!("    {:>6.2} {:>8.4} {:>8.4}\n", p.f_ghz, p.mean, p.ci95));
        }
    }
    s
}

/// Render the Figure 6 energy table.
///
/// The two rightmost columns report the overlapped compress→write
/// pipeline: tuned wall time and its speedup over the sequential dump
/// (same joules — see [`crate::pipeline`]).
pub fn render_dump(title: &str, rows: &[DumpRow]) -> String {
    let mut s = String::new();
    s.push_str(&format!("{title}\n"));
    s.push_str(&format!(
        "{:>8} {:>8} {:>12} {:>12} {:>10} {:>8} {:>10} {:>8}\n",
        "eb", "ratio", "base_kJ", "tuned_kJ", "saved_kJ", "savings", "pipe_s", "overlap"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:>8.0e} {:>8.2} {:>12.2} {:>12.2} {:>10.2} {:>7.1}% {:>10.1} {:>7.2}x\n",
            r.error_bound,
            r.ratio,
            r.base.total_j() / 1e3,
            r.tuned.total_j() / 1e3,
            r.saved_j() / 1e3,
            r.savings() * 100.0,
            r.tuned_overlap.pipelined_s,
            r.tuned_overlap.speedup()
        ));
    }
    s
}

/// Render the §V-A3 tuning summary.
pub fn render_tuning(report: &TuningReport) -> String {
    format!(
        "Eqn-3 tuning evaluation\n\
           compression: power savings {:>5.1}%, runtime increase {:>5.1}%, energy savings {:>5.1}%\n\
           writing:     power savings {:>5.1}%, runtime increase {:>5.1}%, energy savings {:>5.1}%\n\
           combined:    savings {:>5.1}% (paper: 14.3%), runtime increase {:>5.1}% (paper: 8.4%)\n",
        report.compression_power_savings * 100.0,
        report.compression_runtime_increase * 100.0,
        report.compression_energy_savings * 100.0,
        report.writing_power_savings * 100.0,
        report.writing_runtime_increase * 100.0,
        report.writing_energy_savings * 100.0,
        report.combined_savings() * 100.0,
        report.combined_runtime_increase() * 100.0
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characteristics::CurvePoint;
    use lcpio_fit::{GoodnessOfFit, PowerLawFit};
    use lcpio_powersim::Chip;

    fn model_row() -> ModelRow {
        ModelRow {
            name: "Broadwell".into(),
            fit: PowerLawFit {
                a: 0.0064,
                b: 5.315,
                c: 0.7429,
                gof: GoodnessOfFit { sse: 2.463, rmse: 0.0279, r2: 0.8731, n: 100 },
                converged: true,
            },
        }
    }

    #[test]
    fn model_table_contains_equation_and_gf() {
        let out = render_model_table("TABLE IV", &[model_row()]);
        assert!(out.contains("TABLE IV"));
        assert!(out.contains("Broadwell"));
        assert!(out.contains("f^5.315"));
        assert!(out.contains("0.0279"));
    }

    #[test]
    fn curves_render_all_points() {
        let c = CurveSeries {
            label: "Broadwell-SZ".into(),
            chip: Chip::Broadwell,
            points: vec![
                CurvePoint { f_ghz: 0.8, mean: 0.78, ci95: 0.01 },
                CurvePoint { f_ghz: 2.0, mean: 1.0, ci95: 0.01 },
            ],
        };
        let out = render_curves("Fig 1", &[c]);
        assert!(out.contains("Broadwell-SZ"));
        assert_eq!(out.matches("\n    ").count(), 3); // header + 2 points
    }

    #[test]
    fn dump_table_shows_overlap_columns() {
        use crate::datadump::PhaseEnergy;
        use crate::pipeline::OverlapOutcome;
        let phase = |c: f64, w: f64| PhaseEnergy {
            compression_j: c,
            writing_j: w,
            compression_s: c / 100.0,
            writing_s: w / 100.0,
        };
        let row = DumpRow {
            error_bound: 1e-3,
            ratio: 7.5,
            base: phase(40e3, 12e3),
            tuned: phase(34e3, 11e3),
            base_overlap: OverlapOutcome {
                compression_j: 40e3,
                writing_j: 12e3,
                sequential_s: 520.0,
                pipelined_s: 410.0,
            },
            tuned_overlap: OverlapOutcome {
                compression_j: 34e3,
                writing_j: 11e3,
                sequential_s: 560.0,
                pipelined_s: 448.0,
            },
        };
        let out = render_dump("FIG 6", &[row]);
        assert!(out.contains("pipe_s"));
        assert!(out.contains("overlap"));
        assert!(out.contains("448.0"));
        assert!(out.contains("1.25x"));
    }

    #[test]
    fn tuning_summary_mentions_paper_targets() {
        let rep = TuningReport {
            compression_power_savings: 0.194,
            compression_runtime_increase: 0.075,
            compression_energy_savings: 0.134,
            writing_power_savings: 0.112,
            writing_runtime_increase: 0.093,
            writing_energy_savings: 0.03,
        };
        let out = render_tuning(&rep);
        assert!(out.contains("19.4%"));
        assert!(out.contains("paper: 14.3%"));
    }
}
