#![warn(missing_docs)]
//! # lcpio-core — power modeling & DVFS tuning of lossy compressed I/O
//!
//! The paper's contribution, rebuilt as a library. Everything hangs off
//! five stages:
//!
//! 1. [`experiment`] — run the §IV sweeps: really compress synthetic
//!    SDRBench-like fields with SZ/ZFP at four error bounds, map the work
//!    onto the simulated Broadwell/Skylake machines ([`workmap`]), and
//!    measure power/runtime/energy across the DVFS ladder with 10 noisy
//!    repetitions per point.
//! 2. [`slicing`] + [`models`] — regress `P(f) = a·f^b + c` per slice,
//!    reproducing Tables IV and V with SSE/RMSE/R².
//! 3. [`characteristics`] — the scaled power/runtime curves of Figures 1–4
//!    with 95% confidence bands.
//! 4. [`tuning`] — Eqn 3 (`0.875·f_max` / `0.85·f_max`), rule evaluation,
//!    and the energy-optimal search.
//! 5. [`validation`] + [`datadump`] — the §VI use cases: the Broadwell
//!    model vs Hurricane-ISABEL (Figure 5) and the 512 GB NYX dump
//!    (Figure 6).
//!
//! ```no_run
//! use lcpio_core::experiment::{run_full_sweep, ExperimentConfig};
//! use lcpio_core::models::{compression_model_table, transit_model_table};
//! use lcpio_core::report::render_model_table;
//!
//! let sweep = run_full_sweep(&ExperimentConfig::paper());
//! let table4 = compression_model_table(&sweep.compression);
//! let table5 = transit_model_table(&sweep.transit);
//! println!("{}", render_model_table("TABLE IV", &table4));
//! println!("{}", render_model_table("TABLE V", &table5));
//! ```

pub mod characteristics;
pub mod checkpoint;
pub mod datadump;
pub mod error;
pub mod experiment;
pub mod generalization;
pub mod models;
pub mod par;
pub mod pareto;
pub mod pipeline;
pub mod policy;
pub mod provenance;
pub mod readback;
pub mod records;
pub mod report;
pub mod slicing;
pub mod tuning;
pub mod validation;
pub mod workmap;

pub use error::{CoreError, PipelineError};
pub use pipeline::{PipelineConfig, RestartConfig, RestartOutcome, StreamOutcome};
pub use policy::{ParetoAdaptive, PolicyKind, PolicyRecord};
pub use experiment::{ExperimentConfig, SweepResult};
pub use records::{CompressionRecord, Compressor, TransitRecord};
pub use tuning::{TuningReport, TuningRule};
pub use workmap::CostModel;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characteristics::*;
    use crate::models::*;

    /// One integration pass over the whole §IV–§VI pipeline at test scale.
    #[test]
    fn end_to_end_pipeline() {
        let cfg = ExperimentConfig::quick();
        let sweep = experiment::run_full_sweep(&cfg);

        let t4 = compression_model_table(&sweep.compression);
        let t5 = transit_model_table(&sweep.transit);
        assert_eq!(t4.len(), 5);
        assert_eq!(t5.len(), 3);

        let report = tuning::evaluate_rule(
            TuningRule::PAPER,
            &compression_power_curves(&sweep.compression),
            &compression_runtime_curves(&sweep.compression),
            &transit_power_curves(&sweep.transit),
            &transit_runtime_curves(&sweep.transit),
        );
        assert!(report.combined_savings() > 0.05);

        let (rows, summary) = datadump::run_data_dump(&datadump::DataDumpConfig::quick())
            .expect("quick dump runs");
        assert!(!rows.is_empty());
        assert!(summary.mean_savings > 0.0);
    }
}
