//! Checkpoint/restart workflow energy — extension.
//!
//! The paper's related work (Morán et al., IEEE Access'19) optimizes
//! checkpoint/restart energy with DVFS; the paper itself tunes the
//! compress+dump pipeline those checkpoints are made of. This module puts
//! the two together: a long-running simulation that periodically dumps a
//! compressed checkpoint, with Eqn-3 tuning applied *only* during the dump
//! phases (the simulation itself keeps the full clock — §I: "when a user
//! runs simulations, one needs the full CPU power").

use crate::error::CoreError;
use crate::pipeline::{scaled_overlap, scaled_restart, OverlapOutcome};
use crate::records::Compressor;
use crate::tuning::TuningRule;
use crate::workmap::CostModel;
use lcpio_datagen::nyx;
use lcpio_powersim::{simulate, Chip, Machine, WorkProfile};
use lcpio_codec::BoundSpec;
use serde::{Deserialize, Serialize};

/// Configuration of the checkpointing job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckpointConfig {
    /// Simulation compute between checkpoints (cycles).
    pub step_cycles: f64,
    /// Simulation memory traffic between checkpoints (bytes).
    pub step_memory_bytes: f64,
    /// Number of checkpoints over the job.
    pub checkpoints: u32,
    /// Uncompressed size of one checkpoint (bytes).
    pub checkpoint_bytes: f64,
    /// Error bound for checkpoint compression.
    pub error_bound: f64,
    /// Chip running the job.
    pub chip: Chip,
    /// Compressor for the checkpoints.
    pub compressor: Compressor,
    /// Sample cube side for work characterization.
    pub sample_side: usize,
    /// RNG seed.
    pub seed: u64,
    /// Tuning rule applied during dump phases.
    pub rule: TuningRule,
    /// Cost-model constants.
    pub cost_model: CostModel,
    /// Worker threads for chunked SZ checkpoint compression
    /// (0 = all available cores).
    pub threads: usize,
    /// Bounded-queue depth of the overlapped compress→write pipeline used
    /// for the dump-phase overlap accounting (1 = no overlap).
    pub queue_depth: usize,
}

impl CheckpointConfig {
    /// A HACC-like job: ~30 min of simulation per 64 GB checkpoint, ×10.
    pub fn paper_like() -> Self {
        CheckpointConfig {
            step_cycles: 3.6e12,       // ~30 min at 2 GHz
            step_memory_bytes: 1.5e13, // heavily memory-traffic-bound steps
            checkpoints: 10,
            checkpoint_bytes: 64e9,
            error_bound: 1e-3,
            chip: Chip::Broadwell,
            compressor: Compressor::Sz,
            sample_side: 64,
            seed: 0xC4EC,
            rule: TuningRule::PAPER,
            cost_model: CostModel::default(),
            threads: 0,
            queue_depth: 4,
        }
    }

    /// Small settings for tests.
    pub fn quick() -> Self {
        CheckpointConfig {
            checkpoints: 3,
            sample_side: 24,
            step_cycles: 1e11,
            step_memory_bytes: 4e11,
            ..Self::paper_like()
        }
    }
}

/// Energy/runtime breakdown of the whole job under one policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// Simulation-phase energy (J).
    pub simulation_j: f64,
    /// Checkpoint compression energy (J).
    pub compression_j: f64,
    /// Checkpoint write energy (J).
    pub writing_j: f64,
    /// Total runtime (s).
    pub runtime_s: f64,
}

impl JobOutcome {
    /// Total energy (J).
    pub fn total_j(&self) -> f64 {
        self.simulation_j + self.compression_j + self.writing_j
    }
}

/// Result of the checkpoint study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointResult {
    /// Everything at base clock.
    pub base: JobOutcome,
    /// Dump phases tuned by Eqn 3 (simulation stays at f_max).
    pub tuned: JobOutcome,
    /// Compression ratio of the checkpoints.
    pub ratio: f64,
    /// Overlapped-pipeline accounting of all dump phases at the base
    /// clock (job totals: per-checkpoint outcome × checkpoint count).
    pub base_overlap: OverlapOutcome,
    /// Overlapped-pipeline accounting of all dump phases under Eqn 3.
    pub tuned_overlap: OverlapOutcome,
    /// Overlapped restart (read→decompress) accounting of re-reading all
    /// checkpoints at the base clock — the other half of the
    /// checkpoint/restart cycle. Slot convention follows `readback`:
    /// `compression_j` is decompression, `writing_j` is the NFS fetch.
    pub base_restart: OverlapOutcome,
    /// Overlapped restart accounting under Eqn 3.
    pub tuned_restart: OverlapOutcome,
}

impl CheckpointResult {
    /// Whole-job energy savings from dump-phase tuning.
    pub fn savings(&self) -> f64 {
        1.0 - self.tuned.total_j() / self.base.total_j()
    }

    /// Whole-job runtime cost of the tuning.
    pub fn runtime_increase(&self) -> f64 {
        self.tuned.runtime_s / self.base.runtime_s - 1.0
    }

    /// Share of base-clock energy spent in dump (compress+write) phases.
    pub fn dump_share(&self) -> f64 {
        (self.base.compression_j + self.base.writing_j) / self.base.total_j()
    }

    /// Whole-job runtime increase of Eqn-3 tuning when the dump phases
    /// run through the overlapped pipeline on both sides.
    ///
    /// Overlap shrinks the dump wall time in both policies, so the
    /// already-diluted runtime cost of tuning shrinks further.
    pub fn overlapped_runtime_increase(&self) -> f64 {
        let base =
            self.base.runtime_s - self.base_overlap.sequential_s + self.base_overlap.pipelined_s;
        let tuned =
            self.tuned.runtime_s - self.tuned_overlap.sequential_s + self.tuned_overlap.pipelined_s;
        tuned / base - 1.0
    }
}

/// Run the study.
///
/// Fails with [`CoreError`] when the sample checkpoint cannot be
/// compressed under the configured bound.
pub fn run_checkpoint_study(cfg: &CheckpointConfig) -> Result<CheckpointResult, CoreError> {
    let _span = lcpio_trace::span("core.checkpoint");
    let machine = Machine::for_chip(cfg.chip);
    let fmax = machine.cpu.f_max_ghz;
    let f_comp = machine.cpu.snap(cfg.rule.compression_fraction * fmax);
    let f_write = machine.cpu.snap(cfg.rule.writing_fraction * fmax);

    // Characterize checkpoint compression on a sample field.
    let field = nyx::velocity_x(cfg.sample_side, cfg.seed);
    let dims: Vec<usize> = field.dims().extents().to_vec();
    let scale = cfg.checkpoint_bytes / field.sample_bytes() as f64;
    let out = cfg.compressor.codec().compress_chunked(
        &field.data,
        &dims,
        BoundSpec::Absolute(cfg.error_bound),
        cfg.threads,
    )?;
    let comp_profile = cfg.cost_model.compression_profile(cfg.compressor, &out.stats, scale);
    let ratio = out.stats.ratio();
    let write_profile = machine.nfs.write_profile(cfg.checkpoint_bytes / ratio);
    let sim_profile = WorkProfile {
        compute_cycles: cfg.step_cycles,
        memory_bytes: cfg.step_memory_bytes,
        ..Default::default()
    };

    let n = cfg.checkpoints as f64;
    // The simulation phase never gets tuned (§I), so its measurement is
    // policy-invariant: simulate it once here instead of once per policy
    // inside the closure (tests::simulation_phase_is_untouched pins that
    // both policies still report the identical value).
    let sim = simulate(&machine, fmax, &sim_profile);
    let outcome = |fc: f64, fw: f64| -> JobOutcome {
        let comp = simulate(&machine, fc, &comp_profile);
        let write = simulate(&machine, fw, &write_profile);
        JobOutcome {
            simulation_j: sim.energy_j * n,
            compression_j: comp.energy_j * n,
            writing_j: write.energy_j * n,
            runtime_s: (sim.runtime_s + comp.runtime_s + write.runtime_s) * n,
        }
    };
    // Overlapped accounting of one checkpoint dump, scaled to the job:
    // dumps are separated by simulation phases, so overlap happens within
    // a dump, never across dumps.
    let overlap_at = |fc: f64, fw: f64| -> OverlapOutcome {
        let o = scaled_overlap(
            &machine,
            fc,
            fw,
            &cfg.cost_model,
            cfg.compressor,
            &out.stats,
            cfg.checkpoint_bytes,
            cfg.queue_depth,
        );
        OverlapOutcome {
            compression_j: o.compression_j * n,
            writing_j: o.writing_j * n,
            sequential_s: o.sequential_s * n,
            pipelined_s: o.pipelined_s * n,
        }
    };
    // Restart accounting of the mirror path (fetch every checkpoint back
    // and decompress it), same per-checkpoint scaling. Eqn 3 assigns the
    // writing fraction to the fetch and the compression fraction to
    // decompression, exactly as `readback` does.
    let restart_at = |ff: f64, fd: f64| -> OverlapOutcome {
        let o = scaled_restart(
            &machine,
            ff,
            fd,
            &cfg.cost_model,
            cfg.compressor,
            &out.stats,
            cfg.checkpoint_bytes,
            cfg.queue_depth,
        );
        OverlapOutcome {
            compression_j: o.compression_j * n,
            writing_j: o.writing_j * n,
            sequential_s: o.sequential_s * n,
            pipelined_s: o.pipelined_s * n,
        }
    };
    let result = CheckpointResult {
        base: outcome(fmax, fmax),
        tuned: outcome(f_comp, f_write),
        ratio,
        base_overlap: overlap_at(fmax, fmax),
        tuned_overlap: overlap_at(f_comp, f_write),
        base_restart: restart_at(fmax, fmax),
        tuned_restart: restart_at(f_write, f_comp),
    };
    if lcpio_trace::collecting() {
        lcpio_trace::counter_add(
            "core.checkpoint.simulation_uj",
            (result.base.simulation_j * 1e6) as u64,
        );
        lcpio_trace::counter_add(
            "core.checkpoint.compression_uj",
            (result.base.compression_j * 1e6) as u64,
        );
        lcpio_trace::counter_add(
            "core.checkpoint.writing_uj",
            (result.base.writing_j * 1e6) as u64,
        );
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dump_tuning_saves_whole_job_energy() {
        let r = run_checkpoint_study(&CheckpointConfig::quick()).expect("quick study runs");
        assert!(r.savings() > 0.0, "savings {}", r.savings());
        assert!(r.ratio > 1.0);
    }

    #[test]
    fn simulation_phase_is_untouched() {
        let r = run_checkpoint_study(&CheckpointConfig::quick()).expect("quick study runs");
        assert_eq!(r.base.simulation_j, r.tuned.simulation_j);
    }

    #[test]
    fn whole_job_runtime_cost_is_diluted() {
        // Tuning only the dump phases: the whole-job runtime increase must
        // be smaller than the dump-phase-only increase (~8%).
        let r = run_checkpoint_study(&CheckpointConfig::paper_like()).expect("paper-like study runs");
        assert!(
            r.runtime_increase() < 0.08,
            "whole-job runtime increase {}",
            r.runtime_increase()
        );
        assert!(r.runtime_increase() > 0.0);
    }

    #[test]
    fn savings_scale_with_dump_share() {
        // More frequent checkpoints → dump phases dominate → bigger savings.
        let rare = CheckpointConfig { step_cycles: 1e12, ..CheckpointConfig::quick() };
        let frequent = CheckpointConfig { step_cycles: 1e10, ..CheckpointConfig::quick() };
        let r_rare = run_checkpoint_study(&rare).expect("study runs");
        let r_freq = run_checkpoint_study(&frequent).expect("study runs");
        assert!(r_freq.dump_share() > r_rare.dump_share());
        assert!(r_freq.savings() > r_rare.savings());
    }

    #[test]
    fn hoisted_simulation_phase_matches_direct_simulation() {
        // Regression for the invariant hoist: the simulation phase used to
        // be re-simulated inside each policy closure. Pin the hoisted
        // value to a from-scratch computation.
        let cfg = CheckpointConfig::quick();
        let r = run_checkpoint_study(&cfg).expect("quick study runs");
        let machine = Machine::for_chip(cfg.chip);
        let sim_profile = WorkProfile {
            compute_cycles: cfg.step_cycles,
            memory_bytes: cfg.step_memory_bytes,
            ..Default::default()
        };
        let sim = simulate(&machine, machine.cpu.f_max_ghz, &sim_profile);
        assert_eq!(r.base.simulation_j, sim.energy_j * cfg.checkpoints as f64);
        assert_eq!(r.tuned.simulation_j, r.base.simulation_j);
    }

    #[test]
    fn overlap_conserves_dump_energy_and_shrinks_dump_time() {
        let r = run_checkpoint_study(&CheckpointConfig::paper_like()).expect("study runs");
        let rel = |a: f64, b: f64| (a - b).abs() / b.max(1e-12);
        for (seq, ovl) in [(&r.base, &r.base_overlap), (&r.tuned, &r.tuned_overlap)] {
            // Same joules as the sequential dump phases (ceil-rounded
            // chunk count vs exact scale factor — tiny tolerance).
            assert!(rel(ovl.compression_j, seq.compression_j) < 1e-4);
            assert!(rel(ovl.writing_j, seq.writing_j) < 1e-4);
            // Overlap shortens the dump wall time at queue_depth 4.
            assert!(ovl.pipelined_s < ovl.sequential_s);
            assert!(ovl.speedup() > 1.0);
        }
        // Pipelining the dumps further dilutes tuning's runtime cost.
        assert!(r.overlapped_runtime_increase() > 0.0);
        assert!(r.overlapped_runtime_increase() <= r.runtime_increase() + 1e-12);
    }

    #[test]
    fn restart_accounting_mirrors_the_dump_side() {
        let r = run_checkpoint_study(&CheckpointConfig::paper_like()).expect("study runs");
        for ovl in [&r.base_restart, &r.tuned_restart] {
            assert!(ovl.total_j() > 0.0);
            assert!(ovl.pipelined_s < ovl.sequential_s);
            assert!(ovl.speedup() > 1.0);
        }
        // Eqn-3 tuning saves energy on the read-back half of the cycle too.
        assert!(r.tuned_restart.total_j() < r.base_restart.total_j());
        // Decompression is cheaper than compression at matched clocks.
        assert!(r.base_restart.compression_j < r.base_overlap.compression_j);
    }

    #[test]
    fn zfp_checkpoints_also_save() {
        let cfg = CheckpointConfig { compressor: Compressor::Zfp, ..CheckpointConfig::quick() };
        let r = run_checkpoint_study(&cfg).expect("study runs");
        assert!(r.savings() > 0.0);
    }
}
