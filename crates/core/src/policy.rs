//! Energy-aware per-chunk policy layer (extension).
//!
//! `lcpio-codec` defines the [`ChunkPolicy`] trait plus the `Fixed` and
//! `Heuristic` implementations; this module adds the piece that needs
//! the fitted power models: [`ParetoAdaptive`], which prices every
//! candidate *arm* (codec × DVFS frequency) from a small sampled
//! compression of the chunk, then picks the minimum-energy arm whose
//! runtime stays within a throughput budget — the online controller
//! ROADMAP item 4 asks for, wrapping [`crate::pareto`] and
//! [`lcpio_powersim::dvfs`].
//!
//! Arm costing: a contiguous sample window of the chunk is compressed
//! with each codec; the sampled [`lcpio_codec::CodecStats`] are scaled to
//! the full chunk and mapped through [`CostModel::compression_profile`]
//! into a work profile, and the predicted output bytes through
//! [`lcpio_powersim::NfsSpec::write_profile`]. Both phases are evaluated
//! at every ladder frequency, so an arm's energy couples compute cost
//! *and* output size — the codec that shrinks the chunk more also pays
//! less write energy, which is what lets the adaptive policy dominate
//! fixed configurations on the energy-vs-ratio front rather than trading
//! one axis for the other.
//!
//! The module also hosts the interleaved CESM+HACC workload used by the
//! acceptance test, the bench, and the sweep driver's adaptive axis: a
//! stream alternating smooth climate chunks (loose relative bound → SZ
//! wins ratio and cycles) with range-amplified particle chunks (tight
//! relative bound → the SZ predictor collapses to literals and ZFP wins
//! both). One absolute bound across fields of wildly different dynamic
//! range is exactly the mixed-field I/O situation CEAZ-style adaptive
//! compression targets.

use crate::pareto::{energy_optimal, FrequencyPoint};
use crate::records::Compressor;
use crate::workmap::CostModel;
use lcpio_codec::policy::{sample_stats, ChunkPlan, ChunkPolicy, CodecId, FixedPolicy, HeuristicPolicy};
use lcpio_codec::{registry, BoundSpec, CodecStats};
use lcpio_datagen::Dataset;
use lcpio_powersim::{simulate, Chip, CpuFreqController, Machine};
use serde::{Deserialize, Serialize};

/// Which chunk policy a pipeline run uses. The CLI's `--policy` flag and
/// the `LCPIO_POLICY` environment variable (used by the CI policy legs)
/// both parse into this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Legacy behaviour: one codec, one bound, every chunk (default).
    Fixed,
    /// Content routing by smoothness × SZ predictor hit ratio, at the
    /// paper's Eqn-3 frequency (0.875 · f_max).
    Heuristic,
    /// Pareto arm costing: minimum-energy codec × frequency per chunk
    /// under a throughput budget.
    Adaptive,
}

impl PolicyKind {
    /// Parse a CLI/env spelling (`fixed|heuristic|adaptive`).
    pub fn parse(s: &str) -> Option<PolicyKind> {
        match s.to_ascii_lowercase().as_str() {
            "fixed" => Some(PolicyKind::Fixed),
            "heuristic" => Some(PolicyKind::Heuristic),
            "adaptive" => Some(PolicyKind::Adaptive),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Fixed => "fixed",
            PolicyKind::Heuristic => "heuristic",
            PolicyKind::Adaptive => "adaptive",
        }
    }

    /// Policy selected by the `LCPIO_POLICY` environment variable, or
    /// `Fixed` when unset/unparseable. The CI pipeline/restart legs use
    /// this to re-run the whole suite under `adaptive` without forking
    /// the test code.
    pub fn from_env() -> PolicyKind {
        std::env::var("LCPIO_POLICY")
            .ok()
            .and_then(|v| PolicyKind::parse(&v))
            .unwrap_or(PolicyKind::Fixed)
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Default throughput budget: an arm is feasible if its (compress +
/// write) runtime stays within this multiple of the same arm's runtime
/// at f_max. The energy knee sits well inside 2× on all three chips
/// (asserted by `energy_optimum_is_feasible_at_default_slack`), so the
/// default budget never forces the controller off the energy optimum;
/// tighter budgets trade energy for speed explicitly.
pub const DEFAULT_SLACK: f64 = 2.0;

/// Default sample window for adaptive arm costing. Smaller than the
/// heuristic's window: two codecs sample every chunk, and the plan
/// overhead budget is <2% of compress time.
pub const DEFAULT_SAMPLE_WINDOW: usize = 1024;

/// Cost of one candidate arm (codec at one frequency) for one chunk.
#[derive(Debug, Clone, Copy)]
struct ArmChoice {
    codec: CodecId,
    point: FrequencyPoint,
    predicted_bytes: f64,
}

/// The energy-aware policy: per chunk, predict ratio and joules for each
/// candidate codec from a sampled compression, evaluate compress + write
/// energy across the DVFS ladder, and pick the minimum-energy arm whose
/// runtime fits the throughput budget. Frequencies are pinned through
/// [`CpuFreqController`] (userspace governor), so every plan frequency
/// lies on the chip's P-state grid.
#[derive(Debug, Clone)]
pub struct ParetoAdaptive {
    machine: Machine,
    cost_model: CostModel,
    bound: BoundSpec,
    /// Throughput budget multiplier (see [`DEFAULT_SLACK`]).
    pub slack: f64,
    /// Sample window per codec per chunk (elements).
    pub sample_window: usize,
}

impl ParetoAdaptive {
    /// Adaptive policy for one chip / bound / cost model.
    pub fn new(chip: Chip, bound: BoundSpec, cost_model: CostModel) -> Self {
        ParetoAdaptive {
            machine: Machine::for_chip(chip),
            cost_model,
            bound,
            slack: DEFAULT_SLACK,
            sample_window: DEFAULT_SAMPLE_WINDOW,
        }
    }

    /// Override the throughput budget multiplier.
    pub fn with_slack(mut self, slack: f64) -> Self {
        self.slack = slack;
        self
    }

    /// Ladder-wide (runtime, energy) points for one codec arm on one
    /// chunk, plus the predicted full-chunk output bytes. `None` if the
    /// codec cannot compress the sample (e.g. ZFP with a non-absolute
    /// bound).
    fn arm_points(&self, codec: CodecId, chunk: &[f32]) -> Option<(Vec<FrequencyPoint>, f64)> {
        let compressor = compressor_of(codec)?;
        let stats = sample_stats(codec.name(), chunk, self.bound, self.sample_window)?;
        if stats.elements == 0 {
            return None;
        }
        let scale = chunk.len() as f64 / stats.elements as f64;
        let comp = self.cost_model.compression_profile(compressor, &stats, scale);
        let predicted_bytes = stats.output_bytes as f64 * scale;
        let write = self.machine.nfs.write_profile(predicted_bytes);
        let points = self
            .machine
            .cpu
            .ladder()
            .map(|f| {
                let c = simulate(&self.machine, f, &comp);
                let w = simulate(&self.machine, f, &write);
                let runtime_s = c.runtime_s + w.runtime_s;
                let energy_j = c.energy_j + w.energy_j;
                FrequencyPoint { f_ghz: f, power_w: energy_j / runtime_s, runtime_s, energy_j }
            })
            .collect();
        Some((points, predicted_bytes))
    }

    /// The winning arm for a chunk, if any codec can compress it.
    fn choose(&self, chunk: &[f32]) -> Option<ArmChoice> {
        let mut best: Option<ArmChoice> = None;
        for codec in [CodecId::Sz, CodecId::Zfp] {
            let Some((points, predicted_bytes)) = self.arm_points(codec, chunk) else {
                continue;
            };
            // The ladder ascends, so the last point is the f_max arm the
            // throughput budget is anchored to.
            let t_fmax = points.last()?.runtime_s;
            let budget = self.slack * t_fmax;
            let feasible: Vec<FrequencyPoint> =
                points.into_iter().filter(|p| p.runtime_s <= budget).collect();
            let Some(&opt) = energy_optimal(&feasible) else { continue };
            let better = match &best {
                None => true,
                Some(b) => {
                    opt.energy_j < b.point.energy_j - 1e-15
                        || (opt.energy_j <= b.point.energy_j + 1e-15
                            && predicted_bytes < b.predicted_bytes)
                }
            };
            if better {
                best = Some(ArmChoice { codec, point: opt, predicted_bytes });
            }
        }
        best
    }
}

impl ChunkPolicy for ParetoAdaptive {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn plan(&self, chunk: &[f32], _seq: usize) -> ChunkPlan {
        match self.choose(chunk) {
            Some(arm) => {
                let mut ctl = CpuFreqController::new(self.machine.cpu);
                let f_ghz =
                    ctl.set_frequency(arm.point.f_ghz).unwrap_or(self.machine.cpu.f_max_ghz);
                ChunkPlan { codec: arm.codec, bound: self.bound, f_ghz }
            }
            // No codec can price the chunk (empty, or the bound is
            // rejected by every arm's sampler): fall back to the legacy
            // behaviour at f_max.
            None => ChunkPlan { codec: CodecId::Sz, bound: self.bound, f_ghz: self.machine.cpu.f_max_ghz },
        }
    }
}

/// The registry compressor behind a codec id (`None` for `Raw`).
pub fn compressor_of(codec: CodecId) -> Option<Compressor> {
    match codec {
        CodecId::Sz => Some(Compressor::Sz),
        CodecId::Zfp => Some(Compressor::Zfp),
        CodecId::Raw => None,
    }
}

/// The codec id of a registry compressor.
pub fn codec_id_of(compressor: Compressor) -> CodecId {
    match compressor {
        Compressor::Sz => CodecId::Sz,
        Compressor::Zfp => CodecId::Zfp,
    }
}

/// Construct the policy a [`PolicyKind`] names, with the pipeline's
/// compressor/bound as the fixed arm and the chip's DVFS ladder as the
/// frequency domain.
///
/// * `Fixed` — the configured codec at f_max (legacy behaviour).
/// * `Heuristic` — content routing, pinned at the paper's Eqn-3
///   frequency `0.875 · f_max` via [`CpuFreqController::set_relative`].
/// * `Adaptive` — [`ParetoAdaptive`] arm costing.
pub fn build_policy(
    kind: PolicyKind,
    compressor: Compressor,
    bound: BoundSpec,
    chip: Chip,
    cost_model: CostModel,
) -> Box<dyn ChunkPolicy> {
    let spec = Machine::for_chip(chip).cpu;
    match kind {
        PolicyKind::Fixed => {
            Box::new(FixedPolicy::new(codec_id_of(compressor), bound, spec.f_max_ghz))
        }
        PolicyKind::Heuristic => {
            let mut ctl = CpuFreqController::new(spec);
            let f = ctl.set_relative(0.875).unwrap_or(spec.f_max_ghz);
            Box::new(HeuristicPolicy::new(bound, f))
        }
        PolicyKind::Adaptive => Box::new(ParetoAdaptive::new(chip, bound, cost_model)),
    }
}

/// Range amplifier for the HACC chunks of the interleaved workload. The
/// shared absolute bound becomes *relatively* tight on the amplified
/// particle field (≈4·10⁻⁹ of its range at the default 10⁻³ bound), which
/// collapses the SZ predictor to literals there while the CESM chunks
/// stay firmly in SZ territory — the regime where per-chunk codec choice
/// genuinely matters.
pub const HACC_RANGE_AMPLIFIER: f32 = 1000.0;

/// Interleaved CESM+HACC workload: `chunks` chunks of `chunk_elements`,
/// alternating smooth climate data (even chunks) with range-amplified
/// particle data (odd chunks). Deterministic in `seed`; sources are tiled
/// cyclically if a generated field is shorter than the requested stream.
pub fn interleaved_cesm_hacc(chunk_elements: usize, chunks: usize, seed: u64) -> Vec<f32> {
    let scale = chunk_elements.max(4096) * 4;
    let cesm = Dataset::CesmAtm.generate(scale, seed ^ 0xCE5).data;
    let hacc = Dataset::Hacc.generate(scale, seed ^ 0xAAC).data;
    let mut out = Vec::with_capacity(chunks * chunk_elements);
    for c in 0..chunks {
        let (src, amp) =
            if c % 2 == 0 { (&cesm, 1.0) } else { (&hacc, HACC_RANGE_AMPLIFIER) };
        let base = (c / 2) * chunk_elements;
        for i in 0..chunk_elements {
            out.push(src[(base + i) % src.len()] * amp);
        }
    }
    out
}

/// One policy (or fixed arm) evaluated over a whole chunked workload.
/// Flat field types so the serde shims serialize it into sweep JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyRecord {
    /// Label: `fixed-sz@1.40GHz`, `heuristic`, `adaptive`, ...
    pub label: String,
    /// Policy kind name (`fixed`/`heuristic`/`adaptive`).
    pub policy: String,
    /// Chip the energies were modelled on.
    pub chip: Chip,
    /// Total modelled compress + write energy (J).
    pub energy_j: f64,
    /// Total modelled compress + write runtime (s).
    pub runtime_s: f64,
    /// Input bytes across all chunks.
    pub bytes_in: u64,
    /// Output bytes across all chunks.
    pub bytes_out: u64,
    /// Chunks compressed with SZ.
    pub sz_chunks: u64,
    /// Chunks compressed with ZFP.
    pub zfp_chunks: u64,
    /// Chunks stored raw.
    pub raw_chunks: u64,
    /// Wall time spent planning (s; measured, not modelled).
    pub plan_s: f64,
    /// Wall time spent actually compressing the chosen chunks (s).
    pub compress_s: f64,
}

impl PolicyRecord {
    /// Compression ratio `bytes_in / bytes_out`.
    pub fn ratio(&self) -> f64 {
        if self.bytes_out == 0 {
            0.0
        } else {
            self.bytes_in as f64 / self.bytes_out as f64
        }
    }

    /// The record with its measured wall-times zeroed. Everything else in
    /// a [`PolicyRecord`] is modelled from deterministic compressions, but
    /// `plan_s`/`compress_s` are `Instant`-measured and vary run to run —
    /// sweep artifacts that must digest identically on re-runs (the
    /// provenance manifest) store the canonical form and keep wall-times
    /// only in live study output.
    pub fn canonical(mut self) -> PolicyRecord {
        self.plan_s = 0.0;
        self.compress_s = 0.0;
        self
    }

    /// True if `self` dominates `other` on the energy-vs-ratio front:
    /// no worse on both axes, strictly better on at least one.
    pub fn dominates(&self, other: &PolicyRecord) -> bool {
        let no_worse =
            self.energy_j <= other.energy_j * (1.0 + 1e-9) && self.ratio() >= other.ratio() - 1e-12;
        let strictly =
            self.energy_j < other.energy_j * (1.0 - 1e-9) || self.ratio() > other.ratio() + 1e-12;
        no_worse && strictly
    }
}

/// Configuration of a policy comparison study.
#[derive(Debug, Clone, Copy)]
pub struct PolicyStudy {
    /// Shared absolute error bound.
    pub bound: BoundSpec,
    /// Chip whose power model and ladder the arms are priced on.
    pub chip: Chip,
    /// Cost model mapping codec stats to work profiles.
    pub cost_model: CostModel,
    /// Elements per chunk.
    pub chunk_elements: usize,
}

impl Default for PolicyStudy {
    fn default() -> Self {
        PolicyStudy {
            bound: BoundSpec::Absolute(1e-3),
            chip: Chip::Broadwell,
            cost_model: CostModel::default(),
            chunk_elements: 8192,
        }
    }
}

/// Results of [`run_policy_study`]: every fixed codec×frequency arm plus
/// the heuristic and adaptive policies, all over the same workload.
#[derive(Debug, Clone)]
pub struct PolicyStudyResult {
    /// One record per fixed (codec, ladder frequency) configuration.
    pub fixed: Vec<PolicyRecord>,
    /// The heuristic policy.
    pub heuristic: PolicyRecord,
    /// The adaptive policy.
    pub adaptive: PolicyRecord,
}

impl PolicyStudyResult {
    /// Fixed arms the adaptive policy fails to dominate (empty = the
    /// acceptance bar holds).
    pub fn undominated_fixed(&self) -> Vec<&PolicyRecord> {
        self.fixed.iter().filter(|f| !self.adaptive.dominates(f)).collect()
    }

    /// All records, fixed arms first.
    pub fn all(&self) -> Vec<&PolicyRecord> {
        let mut v: Vec<&PolicyRecord> = self.fixed.iter().collect();
        v.push(&self.heuristic);
        v.push(&self.adaptive);
        v
    }
}

/// Per-chunk, per-codec compression outcome cached by the study driver.
struct ChunkArm {
    stats: CodecStats,
    bytes: u64,
    compress_s: f64,
}

/// Evaluate fixed, heuristic, and adaptive policies over `data`, chunked
/// at `study.chunk_elements`, on one machine. Every chunk is compressed
/// once per codec (real compressions, real stats); each policy's energy
/// is then modelled from the stats of the codec its plan picked, with
/// compress *and* write phases attributed at the plan's frequency — the
/// same accounting for every policy, so the comparison is apples to
/// apples.
pub fn run_policy_study(data: &[f32], study: &PolicyStudy) -> PolicyStudyResult {
    let machine = Machine::for_chip(study.chip);
    let chunks: Vec<&[f32]> = data.chunks(study.chunk_elements.max(1)).collect();

    // Real compressions, once per codec per chunk.
    let mut arms: Vec<[Option<ChunkArm>; 2]> = Vec::with_capacity(chunks.len());
    for chunk in &chunks {
        let mut per = [None, None];
        for (slot, codec) in [CodecId::Sz, CodecId::Zfp].into_iter().enumerate() {
            let Some(c) = registry().by_name(codec.name()) else { continue };
            let t0 = std::time::Instant::now();
            if let Ok(enc) = c.compress(chunk, &[chunk.len()], study.bound) {
                per[slot] = Some(ChunkArm {
                    stats: enc.stats,
                    bytes: enc.bytes.len() as u64,
                    compress_s: t0.elapsed().as_secs_f64(),
                });
            }
        }
        arms.push(per);
    }
    let slot_of = |codec: CodecId| match codec {
        CodecId::Sz => 0usize,
        CodecId::Zfp => 1,
        CodecId::Raw => usize::MAX,
    };

    // Modelled compress+write energy/runtime of one chunk's arm at f.
    let phase = |codec: CodecId, arm: &ChunkArm, f: f64| -> (f64, f64) {
        let comp = match compressor_of(codec) {
            Some(c) => study.cost_model.compression_profile(c, &arm.stats, 1.0),
            None => Default::default(),
        };
        let write = machine.nfs.write_profile(arm.bytes as f64);
        let c = simulate(&machine, f, &comp);
        let w = simulate(&machine, f, &write);
        (c.energy_j + w.energy_j, c.runtime_s + w.runtime_s)
    };

    let eval = |label: String, policy: &str, plans: &[ChunkPlan], plan_s: f64| -> PolicyRecord {
        let mut rec = PolicyRecord {
            label,
            policy: policy.to_string(),
            chip: study.chip,
            energy_j: 0.0,
            runtime_s: 0.0,
            bytes_in: 0,
            bytes_out: 0,
            sz_chunks: 0,
            zfp_chunks: 0,
            raw_chunks: 0,
            plan_s,
            compress_s: 0.0,
        };
        for (i, plan) in plans.iter().enumerate() {
            rec.bytes_in += (chunks[i].len() * 4) as u64;
            let slot = slot_of(plan.codec);
            let arm = arms[i].get(slot).and_then(|a| a.as_ref());
            match arm {
                Some(arm) => {
                    let (e, t) = phase(plan.codec, arm, plan.f_ghz);
                    rec.energy_j += e;
                    rec.runtime_s += t;
                    rec.bytes_out += arm.bytes;
                    rec.compress_s += arm.compress_s;
                    match plan.codec {
                        CodecId::Sz => rec.sz_chunks += 1,
                        CodecId::Zfp => rec.zfp_chunks += 1,
                        CodecId::Raw => rec.raw_chunks += 1,
                    }
                }
                None => {
                    // Raw fallback: no compression work, full-size write.
                    let bytes = (chunks[i].len() * 4) as u64;
                    let w = simulate(&machine, plan.f_ghz, &machine.nfs.write_profile(bytes as f64));
                    rec.energy_j += w.energy_j;
                    rec.runtime_s += w.runtime_s;
                    rec.bytes_out += bytes;
                    rec.raw_chunks += 1;
                }
            }
        }
        rec
    };

    let plans_for = |policy: &dyn ChunkPolicy| -> (Vec<ChunkPlan>, f64) {
        let t0 = std::time::Instant::now();
        let plans = chunks.iter().enumerate().map(|(i, c)| policy.plan(c, i)).collect();
        (plans, t0.elapsed().as_secs_f64())
    };

    let mut fixed = Vec::new();
    for compressor in Compressor::ALL {
        for f in machine.cpu.ladder() {
            let pol = FixedPolicy::new(codec_id_of(compressor), study.bound, f);
            let (plans, plan_s) = plans_for(&pol);
            fixed.push(eval(
                format!("fixed-{}@{:.2}GHz", compressor.name().to_ascii_lowercase(), f),
                "fixed",
                &plans,
                plan_s,
            ));
        }
    }

    let heuristic_pol =
        build_policy(PolicyKind::Heuristic, Compressor::Sz, study.bound, study.chip, study.cost_model);
    let (plans, plan_s) = plans_for(heuristic_pol.as_ref());
    let heuristic = eval("heuristic".to_string(), "heuristic", &plans, plan_s);

    let adaptive_pol =
        build_policy(PolicyKind::Adaptive, Compressor::Sz, study.bound, study.chip, study.cost_model);
    let (plans, plan_s) = plans_for(adaptive_pol.as_ref());
    let adaptive = eval("adaptive".to_string(), "adaptive", &plans, plan_s);

    PolicyStudyResult { fixed, heuristic, adaptive }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn study() -> PolicyStudy {
        PolicyStudy::default()
    }

    #[test]
    fn policy_kind_parses_and_displays() {
        for kind in [PolicyKind::Fixed, PolicyKind::Heuristic, PolicyKind::Adaptive] {
            assert_eq!(PolicyKind::parse(kind.name()), Some(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(PolicyKind::parse("ADAPTIVE"), Some(PolicyKind::Adaptive));
        assert_eq!(PolicyKind::parse("greedy"), None);
    }

    #[test]
    fn interleaved_workload_is_deterministic_and_mixed() {
        let a = interleaved_cesm_hacc(4096, 6, 7);
        let b = interleaved_cesm_hacc(4096, 6, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4096 * 6);
        // Odd chunks carry the amplified particle field: far larger range.
        let range = |c: &[f32]| {
            c.iter().cloned().fold(f32::NEG_INFINITY, f32::max)
                - c.iter().cloned().fold(f32::INFINITY, f32::min)
        };
        assert!(range(&a[4096..8192]) > 100.0 * range(&a[..4096]));
    }

    #[test]
    fn adaptive_plans_are_pure_and_on_grid() {
        let s = study();
        let pol = ParetoAdaptive::new(s.chip, s.bound, s.cost_model);
        let data = interleaved_cesm_hacc(s.chunk_elements, 4, 11);
        let machine = Machine::for_chip(s.chip);
        for (i, chunk) in data.chunks(s.chunk_elements).enumerate() {
            let p1 = pol.plan(chunk, i);
            let p2 = pol.plan(chunk, i);
            assert_eq!(p1, p2, "plan must be a pure function of the chunk");
            assert!((machine.cpu.snap(p1.f_ghz) - p1.f_ghz).abs() < 1e-12, "off-grid frequency");
            assert!(p1.f_ghz >= machine.cpu.f_min_ghz && p1.f_ghz <= machine.cpu.f_max_ghz);
        }
        // Degenerate chunks still plan (guarded estimators, fallback arm).
        for chunk in [&[][..], &[f32::NAN; 32][..], &[1.0f32; 32][..]] {
            let p = pol.plan(chunk, 0);
            assert!(p.f_ghz.is_finite());
        }
    }

    #[test]
    fn energy_optimum_is_feasible_at_default_slack() {
        // The dominance argument needs the unconstrained energy optimum of
        // every arm to sit inside the default throughput budget on every
        // chip; otherwise adaptive would be forced off the optimum while
        // fixed arms are not.
        let data = interleaved_cesm_hacc(4096, 2, 3);
        for chip in Chip::ALL {
            let pol = ParetoAdaptive::new(chip, BoundSpec::Absolute(1e-3), CostModel::default());
            for chunk in data.chunks(4096) {
                for codec in [CodecId::Sz, CodecId::Zfp] {
                    let (points, _) = pol.arm_points(codec, chunk).expect("arm prices");
                    let t_fmax = points.last().unwrap().runtime_s;
                    let opt = energy_optimal(&points).unwrap();
                    assert!(
                        opt.runtime_s <= DEFAULT_SLACK * t_fmax,
                        "{}: {:?} optimum infeasible",
                        chip.name(),
                        codec
                    );
                }
            }
        }
    }

    #[test]
    fn adaptive_dominates_every_fixed_arm_on_interleaved_workload() {
        // The ROADMAP/ISSUE acceptance bar: on the interleaved CESM+HACC
        // dataset, adaptive beats every fixed codec×frequency
        // configuration on the energy-vs-ratio Pareto front.
        let s = study();
        let data = interleaved_cesm_hacc(s.chunk_elements, 8, 20220530);
        let result = run_policy_study(&data, &s);
        // The plans are genuinely mixed: SZ on CESM, ZFP on amplified HACC.
        assert_eq!(result.adaptive.sz_chunks, 4, "CESM chunks route to SZ");
        assert_eq!(result.adaptive.zfp_chunks, 4, "amplified HACC chunks route to ZFP");
        let undominated = result.undominated_fixed();
        assert!(
            undominated.is_empty(),
            "adaptive (E={:.3e} J, r={:.3}) fails to dominate: {}",
            result.adaptive.energy_j,
            result.adaptive.ratio(),
            undominated
                .iter()
                .map(|f| format!("{} (E={:.3e} J, r={:.3})", f.label, f.energy_j, f.ratio()))
                .collect::<Vec<_>>()
                .join(", ")
        );
        // The heuristic sits between: same codec routing, Eqn-3 frequency.
        assert_eq!(result.heuristic.sz_chunks, 4);
        assert_eq!(result.heuristic.zfp_chunks, 4);
        assert!(result.adaptive.energy_j <= result.heuristic.energy_j * (1.0 + 1e-9));
    }

    #[test]
    fn study_is_deterministic() {
        let s = study();
        let data = interleaved_cesm_hacc(s.chunk_elements, 4, 5);
        let a = run_policy_study(&data, &s);
        let b = run_policy_study(&data, &s);
        assert_eq!(a.adaptive.energy_j, b.adaptive.energy_j);
        assert_eq!(a.adaptive.bytes_out, b.adaptive.bytes_out);
        assert_eq!(a.heuristic.bytes_out, b.heuristic.bytes_out);
        assert_eq!(a.fixed.len(), b.fixed.len());
        for (x, y) in a.fixed.iter().zip(&b.fixed) {
            assert_eq!(x.energy_j, y.energy_j);
        }
        // 2 codecs × full ladder.
        assert_eq!(a.fixed.len(), 2 * Machine::for_chip(s.chip).cpu.ladder_len());
    }

    #[test]
    fn policy_record_dominance_semantics() {
        let base = PolicyRecord {
            label: "a".into(),
            policy: "fixed".into(),
            chip: Chip::Broadwell,
            energy_j: 10.0,
            runtime_s: 1.0,
            bytes_in: 1000,
            bytes_out: 100,
            sz_chunks: 1,
            zfp_chunks: 0,
            raw_chunks: 0,
            plan_s: 0.0,
            compress_s: 0.0,
        };
        let better = PolicyRecord { energy_j: 9.0, bytes_out: 90, ..base.clone() };
        let tied = base.clone();
        let mixed = PolicyRecord { energy_j: 9.0, bytes_out: 200, ..base.clone() };
        assert!(better.dominates(&base));
        assert!(!base.dominates(&better));
        assert!(!tied.dominates(&base));
        assert!(!mixed.dominates(&base) && !base.dominates(&mixed));
    }
}
