//! `perf stat`-style measurement harness.
//!
//! The paper samples total energy and runtime with Linux `perf` and repeats
//! each configuration 10 times, averaging the results. [`Perf`] mirrors
//! that: it runs the energy model, injects multiplicative Gaussian
//! measurement noise per repetition (RAPL reads, scheduling jitter, DRAM
//! traffic variation), accumulates the RAPL-like meter, and reports means
//! with a 95% confidence interval — the shaded bands of Figures 1–4.

use crate::energy::{simulate, Machine, Measurement};
use crate::rapl::{Domain, EnergyMeter};
use crate::workload::WorkProfile;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Default relative noise (σ) on energy and runtime per repetition.
pub const DEFAULT_NOISE_SIGMA: f64 = 0.015;

/// Aggregated statistics over the repetitions of one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PerfStat {
    /// Core clock used (GHz).
    pub f_ghz: f64,
    /// Number of repetitions.
    pub reps: u32,
    /// Mean energy (J).
    pub energy_j: f64,
    /// Mean runtime (s).
    pub runtime_s: f64,
    /// Mean average power (W).
    pub power_w: f64,
    /// Sample standard deviation of power (W).
    pub power_sd_w: f64,
    /// Half-width of the 95% confidence interval on mean power (W).
    pub power_ci95_w: f64,
}

/// The measurement harness.
#[derive(Debug, Clone)]
pub struct Perf {
    rng: SmallRng,
    sigma: f64,
    meter: EnergyMeter,
}

impl Perf {
    /// New harness with the default noise level.
    pub fn new(seed: u64) -> Self {
        Self::with_sigma(seed, DEFAULT_NOISE_SIGMA)
    }

    /// New harness with an explicit noise σ (0 disables noise).
    pub fn with_sigma(seed: u64, sigma: f64) -> Self {
        assert!((0.0..0.5).contains(&sigma), "noise sigma out of range");
        Perf { rng: SmallRng::seed_from_u64(seed), sigma, meter: EnergyMeter::new() }
    }

    /// The shared RAPL-like meter fed by this harness.
    pub fn meter(&self) -> &EnergyMeter {
        &self.meter
    }

    /// Standard-normal sample via Box–Muller.
    fn gauss(&mut self) -> f64 {
        let u1: f64 = self.rng.gen::<f64>().max(1e-12);
        let u2: f64 = self.rng.gen();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// One noisy repetition.
    fn run_once(&mut self, machine: &Machine, f_ghz: f64, profile: &WorkProfile) -> Measurement {
        let ideal = simulate(machine, f_ghz, profile);
        let e_noise = 1.0 + self.sigma * self.gauss();
        let t_noise = 1.0 + self.sigma * self.gauss();
        let energy_j = ideal.energy_j * e_noise.max(0.1);
        let runtime_s = ideal.runtime_s * t_noise.max(0.1);
        self.meter.add(Domain::Package, energy_j);
        Measurement {
            energy_j,
            runtime_s,
            avg_power_w: if runtime_s > 0.0 { energy_j / runtime_s } else { 0.0 },
            ..ideal
        }
    }

    /// Measure `profile` at `f_ghz`, repeated `reps` times (the paper uses
    /// 10), returning averaged statistics.
    pub fn measure(
        &mut self,
        machine: &Machine,
        f_ghz: f64,
        profile: &WorkProfile,
        reps: u32,
    ) -> PerfStat {
        assert!(reps >= 1);
        let mut energies = Vec::with_capacity(reps as usize);
        let mut runtimes = Vec::with_capacity(reps as usize);
        let mut powers = Vec::with_capacity(reps as usize);
        for _ in 0..reps {
            let m = self.run_once(machine, f_ghz, profile);
            energies.push(m.energy_j);
            runtimes.push(m.runtime_s);
            powers.push(m.avg_power_w);
        }
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        let p_mean = mean(&powers);
        let var = if powers.len() > 1 {
            powers.iter().map(|p| (p - p_mean).powi(2)).sum::<f64>() / (powers.len() - 1) as f64
        } else {
            0.0
        };
        let sd = var.sqrt();
        PerfStat {
            f_ghz,
            reps,
            energy_j: mean(&energies),
            runtime_s: mean(&runtimes),
            power_w: p_mean,
            power_sd_w: sd,
            power_ci95_w: 1.96 * sd / (reps as f64).sqrt(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Chip;

    fn profile() -> WorkProfile {
        WorkProfile { compute_cycles: 10e9, memory_bytes: 50e9, ..Default::default() }
    }

    #[test]
    fn noiseless_measurement_matches_model() {
        let m = Machine::new(Chip::Broadwell.spec());
        let mut perf = Perf::with_sigma(1, 0.0);
        let stat = perf.measure(&m, 1.5, &profile(), 3);
        let ideal = simulate(&m, 1.5, &profile());
        assert!((stat.energy_j - ideal.energy_j).abs() < 1e-9);
        assert!((stat.power_w - ideal.avg_power_w).abs() < 1e-9);
        assert_eq!(stat.power_sd_w, 0.0);
    }

    #[test]
    fn noise_averages_out_with_reps() {
        let m = Machine::new(Chip::Skylake.spec());
        let ideal = simulate(&m, 2.0, &profile()).avg_power_w;
        let mut perf = Perf::new(42);
        let stat = perf.measure(&m, 2.0, &profile(), 50);
        assert!((stat.power_w / ideal - 1.0).abs() < 0.02, "mean {} vs {}", stat.power_w, ideal);
        assert!(stat.power_ci95_w > 0.0);
    }

    #[test]
    fn measurements_are_reproducible_per_seed() {
        let m = Machine::new(Chip::Broadwell.spec());
        let a = Perf::new(7).measure(&m, 1.0, &profile(), 10);
        let b = Perf::new(7).measure(&m, 1.0, &profile(), 10);
        assert_eq!(a, b);
        let c = Perf::new(8).measure(&m, 1.0, &profile(), 10);
        assert_ne!(a.energy_j, c.energy_j);
    }

    #[test]
    fn meter_accumulates_every_rep() {
        let m = Machine::new(Chip::Broadwell.spec());
        let mut perf = Perf::with_sigma(1, 0.0);
        let stat = perf.measure(&m, 1.0, &profile(), 10);
        let pkg = perf.meter().read(Domain::Package);
        assert!((pkg - stat.energy_j * 10.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "noise sigma out of range")]
    fn absurd_sigma_rejected() {
        let _ = Perf::with_sigma(0, 0.9);
    }
}
