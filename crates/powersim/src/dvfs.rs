//! DVFS control, mirroring `cpufreq-set`.
//!
//! The paper pins all cores to each ladder frequency with the Linux
//! `cpufreq-set` call before every measurement. [`CpuFreqController`]
//! plays that role for the simulated CPU: requests snap to the 50 MHz
//! P-state grid and clamp to the supported range, and a userspace-style
//! governor records the pinned frequency until the next request.

use crate::cpu::CpuSpec;
use serde::{Deserialize, Serialize};

/// Errors from frequency control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DvfsError {
    /// Requested frequency is not finite or not positive.
    InvalidFrequency,
}

impl std::fmt::Display for DvfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DvfsError::InvalidFrequency => write!(f, "invalid frequency request"),
        }
    }
}

impl std::error::Error for DvfsError {}

/// Scaling governor, following the Linux cpufreq names the paper's
/// methodology depends on (`userspace` + explicit `cpufreq-set`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Governor {
    /// Pin to an explicitly requested frequency.
    Userspace,
    /// Always run at `f_max`.
    Performance,
    /// Always run at `f_min`.
    Powersave,
}

/// A `cpufreq`-like controller for one simulated CPU.
#[derive(Debug, Clone)]
pub struct CpuFreqController {
    spec: CpuSpec,
    governor: Governor,
    pinned_ghz: f64,
}

impl CpuFreqController {
    /// New controller; starts in `Performance` at `f_max`.
    pub fn new(spec: CpuSpec) -> Self {
        CpuFreqController { spec, governor: Governor::Performance, pinned_ghz: spec.f_max_ghz }
    }

    /// The controlled CPU.
    pub fn spec(&self) -> &CpuSpec {
        &self.spec
    }

    /// Current governor.
    pub fn governor(&self) -> Governor {
        self.governor
    }

    /// Switch governor; `Performance`/`Powersave` re-pin immediately.
    pub fn set_governor(&mut self, g: Governor) {
        self.governor = g;
        match g {
            Governor::Performance => self.pinned_ghz = self.spec.f_max_ghz,
            Governor::Powersave => self.pinned_ghz = self.spec.f_min_ghz,
            Governor::Userspace => {}
        }
    }

    /// `cpufreq-set -f <freq>`: pin all cores to `f_ghz` (snapped to the
    /// P-state grid, clamped to range). Returns the effective frequency.
    pub fn set_frequency(&mut self, f_ghz: f64) -> Result<f64, DvfsError> {
        if !f_ghz.is_finite() || f_ghz <= 0.0 {
            return Err(DvfsError::InvalidFrequency);
        }
        self.governor = Governor::Userspace;
        self.pinned_ghz = self.spec.snap(f_ghz);
        Ok(self.pinned_ghz)
    }

    /// Pin to a fraction of `f_max` (the paper's Eqn-3 style tuning).
    pub fn set_relative(&mut self, fraction: f64) -> Result<f64, DvfsError> {
        if !fraction.is_finite() || fraction <= 0.0 {
            return Err(DvfsError::InvalidFrequency);
        }
        self.set_frequency(fraction * self.spec.f_max_ghz)
    }

    /// Currently pinned frequency (GHz).
    pub fn frequency(&self) -> f64 {
        self.pinned_ghz
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Chip;

    #[test]
    fn starts_at_performance_fmax() {
        let c = CpuFreqController::new(Chip::Broadwell.spec());
        assert_eq!(c.governor(), Governor::Performance);
        assert_eq!(c.frequency(), 2.0);
    }

    #[test]
    fn set_frequency_snaps_and_switches_to_userspace() {
        let mut c = CpuFreqController::new(Chip::Broadwell.spec());
        let eff = c.set_frequency(1.333).unwrap();
        assert!((eff - 1.35).abs() < 1e-12);
        assert_eq!(c.governor(), Governor::Userspace);
        assert_eq!(c.frequency(), eff);
    }

    #[test]
    fn set_frequency_clamps_to_range() {
        let mut c = CpuFreqController::new(Chip::Skylake.spec());
        assert!((c.set_frequency(0.1).unwrap() - 0.8).abs() < 1e-12);
        assert!((c.set_frequency(9.9).unwrap() - 2.2).abs() < 1e-12);
    }

    #[test]
    fn relative_tuning_matches_eqn3() {
        // 0.875 · 2.0 GHz = 1.75 GHz — on the grid exactly.
        let mut c = CpuFreqController::new(Chip::Broadwell.spec());
        assert!((c.set_relative(0.875).unwrap() - 1.75).abs() < 1e-12);
        // 0.85 · 2.0 GHz = 1.70 GHz.
        assert!((c.set_relative(0.85).unwrap() - 1.70).abs() < 1e-12);
    }

    #[test]
    fn governor_presets_pin_extremes() {
        let mut c = CpuFreqController::new(Chip::Skylake.spec());
        c.set_governor(Governor::Powersave);
        assert_eq!(c.frequency(), 0.8);
        c.set_governor(Governor::Performance);
        assert_eq!(c.frequency(), 2.2);
    }

    #[test]
    fn invalid_requests_rejected() {
        let mut c = CpuFreqController::new(Chip::Broadwell.spec());
        assert_eq!(c.set_frequency(f64::NAN).unwrap_err(), DvfsError::InvalidFrequency);
        assert_eq!(c.set_frequency(-1.0).unwrap_err(), DvfsError::InvalidFrequency);
        assert_eq!(c.set_relative(0.0).unwrap_err(), DvfsError::InvalidFrequency);
    }
}
