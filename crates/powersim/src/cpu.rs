//! CPU specifications and voltage–frequency curves.
//!
//! The paper measures two CloudLab node types (Table II):
//!
//! | Node | CPU | Clock range | Series |
//! |---|---|---|---|
//! | m510 | Xeon D-1548 | 0.8–2.0 GHz | Broadwell |
//! | c220g5 | Xeon Silver 4114 | 0.8–2.2 GHz | Skylake |
//!
//! Since the hardware (and its RAPL counters) is unavailable, each chip is
//! modeled by a small set of physical parameters. The *shape* of the
//! voltage–frequency curve is what differentiates the two architectures in
//! the paper's fits: Broadwell's V(f) rises steadily across the range
//! (fitted exponent b ≈ 5), while Skylake holds a near-constant voltage
//! until close to its top clock and then ramps steeply (fitted b ≈ 23 —
//! the "flat then jump" of Figures 1 and 3).

use serde::{Deserialize, Serialize};

/// The CPU architectures available to the simulator: the paper's two
/// chips, plus a hypothetical third ("will these trends hold on different
/// CPUs" is the paper's stated future work — §VI-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Chip {
    /// Intel Xeon D-1548 (CloudLab m510), 45 W TDP.
    Broadwell,
    /// Intel Xeon Silver 4114 (CloudLab c220g5), 85 W TDP.
    Skylake,
    /// A hypothetical wide-range server part (EPYC-Rome-like): higher
    /// clocks, better memory bandwidth, a voltage ramp between the two
    /// Intel extremes. Not part of the paper's sweeps ([`Chip::ALL`]);
    /// used by the generalization extension study.
    EpycLike,
}

impl Chip {
    /// The paper's two chips, in Table II order (the generalization chip
    /// is deliberately excluded so the reproduction sweeps stay faithful).
    pub const ALL: [Chip; 2] = [Chip::Broadwell, Chip::Skylake];

    /// Architecture name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Chip::Broadwell => "Broadwell",
            Chip::Skylake => "Skylake",
            Chip::EpycLike => "EPYC-like",
        }
    }

    /// The calibrated specification for this chip.
    pub fn spec(self) -> CpuSpec {
        match self {
            // Calibration targets (paper §V): compression power savings of
            // ≈19% at −12.5% frequency with ≈+7.5% runtime; a scaled-power
            // floor near 0.75–0.8; and a critical power slope — most of the
            // power drop concentrated just below f_max.
            Chip::Broadwell => CpuSpec {
                chip: Chip::Broadwell,
                model: "Xeon D-1548",
                f_min_ghz: 0.8,
                f_max_ghz: 2.0,
                f_step_ghz: 0.05,
                tdp_w: 45.0,
                // Gradual rise plus a knee near 0.87·f_max: fits a moderate
                // power-law exponent (paper: b ≈ 5.3).
                vf: VfCurve { v_base: 0.58, slope: 0.085, knee_ghz: 1.6, knee_slope: 0.8 },
                p_static_w: 14.0,
                c_eff: 8.1,
                mem_bw_gbs: 12.0,
                p_mem_w: 3.0,
                p_io_w: 2.5,
                uncore_dyn_frac: 0.10,
            },
            // Skylake holds voltage nearly flat until ~1.9 GHz, then ramps
            // hard — the "flat then jump" that regresses to b ≈ 23 in the
            // paper, and the narrower scaled-power range of Figures 1/3.
            Chip::Skylake => CpuSpec {
                chip: Chip::Skylake,
                model: "Xeon Silver 4114",
                f_min_ghz: 0.8,
                f_max_ghz: 2.2,
                f_step_ghz: 0.05,
                tdp_w: 85.0,
                vf: VfCurve { v_base: 0.62, slope: 0.01, knee_ghz: 2.1, knee_slope: 3.6 },
                p_static_w: 20.0,
                c_eff: 4.3,
                mem_bw_gbs: 16.0,
                p_mem_w: 4.0,
                p_io_w: 3.0,
                uncore_dyn_frac: 0.28,
            },
            // Plausible parameters between the two Intel extremes, with a
            // wider clock range — used to test whether Eqn-3-style tuning
            // transfers to hardware outside the regression set.
            Chip::EpycLike => CpuSpec {
                chip: Chip::EpycLike,
                model: "EPYC 7302-like",
                f_min_ghz: 1.0,
                f_max_ghz: 2.6,
                f_step_ghz: 0.05,
                tdp_w: 155.0,
                vf: VfCurve { v_base: 0.60, slope: 0.06, knee_ghz: 2.2, knee_slope: 0.9 },
                p_static_w: 17.0,
                c_eff: 7.5,
                mem_bw_gbs: 20.0,
                p_mem_w: 3.5,
                p_io_w: 2.8,
                uncore_dyn_frac: 0.15,
            },
        }
    }
}

/// Piecewise-linear voltage–frequency curve:
/// `V(f) = v_base + slope·(f − f_min) + knee_slope·max(0, f − knee)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VfCurve {
    /// Voltage at the minimum frequency (V).
    pub v_base: f64,
    /// Gradient below the knee (V/GHz).
    pub slope: f64,
    /// Frequency where the steep ramp starts (GHz); ≥ f_max disables it.
    pub knee_ghz: f64,
    /// Additional gradient above the knee (V/GHz).
    pub knee_slope: f64,
}

impl VfCurve {
    /// Supply voltage at frequency `f` (GHz), measured from `f_min`.
    pub fn voltage(&self, f_ghz: f64, f_min_ghz: f64) -> f64 {
        let base = self.v_base + self.slope * (f_ghz - f_min_ghz);
        base + self.knee_slope * (f_ghz - self.knee_ghz).max(0.0)
    }
}

/// Full parameterization of one simulated CPU.
///
/// (`Serialize`-only: the `model` field is a static string, so specs are
/// exported into experiment records but reconstructed from [`Chip`] presets
/// rather than deserialized.)
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CpuSpec {
    /// Architecture family.
    pub chip: Chip,
    /// Marketing model string.
    pub model: &'static str,
    /// Minimum core clock (GHz).
    pub f_min_ghz: f64,
    /// Maximum (base) core clock (GHz).
    pub f_max_ghz: f64,
    /// DVFS step (GHz); the paper sweeps at 50 MHz.
    pub f_step_ghz: f64,
    /// Thermal design power (W), for reporting only.
    pub tdp_w: f64,
    /// Voltage–frequency curve.
    pub vf: VfCurve,
    /// Frequency-independent package+DRAM floor attributed to the
    /// measurement domain (W).
    pub p_static_w: f64,
    /// Effective switched capacitance: dynamic power = c_eff·V²·f (W, with
    /// V in volts and f in GHz).
    pub c_eff: f64,
    /// Single-core memory bandwidth (GB/s), bounding memory-bound phases.
    pub mem_bw_gbs: f64,
    /// Extra power drawn while memory-bound (W).
    pub p_mem_w: f64,
    /// Extra power drawn while I/O-bound (NIC/disk path) (W).
    pub p_io_w: f64,
    /// Fraction of the core dynamic power that the *uncore* (mesh, LLC,
    /// memory/IO controllers) keeps drawing during memory and I/O waits.
    /// Skylake-SP's uncore is notoriously power-hungry (Schöne et al.,
    /// HPCS'19 — the paper's ref \[22\]), which is what keeps its data-
    /// transit power frequency-sensitive even though the core mostly idles.
    pub uncore_dyn_frac: f64,
}

impl CpuSpec {
    /// Supply voltage at `f_ghz`.
    pub fn voltage(&self, f_ghz: f64) -> f64 {
        self.vf.voltage(f_ghz, self.f_min_ghz)
    }

    /// Single-core dynamic power at `f_ghz` when fully busy (W).
    pub fn dynamic_power(&self, f_ghz: f64) -> f64 {
        let v = self.voltage(f_ghz);
        self.c_eff * v * v * f_ghz
    }

    /// The DVFS ladder from `f_min` to `f_max` inclusive.
    pub fn ladder(&self) -> FrequencyLadder {
        FrequencyLadder { spec: *self, idx: 0 }
    }

    /// Number of ladder steps.
    pub fn ladder_len(&self) -> usize {
        ((self.f_max_ghz - self.f_min_ghz) / self.f_step_ghz).round() as usize + 1
    }

    /// Snap an arbitrary frequency onto the ladder (clamping to range),
    /// like `cpufreq-set` matching the nearest supported P-state.
    pub fn snap(&self, f_ghz: f64) -> f64 {
        let f = f_ghz.clamp(self.f_min_ghz, self.f_max_ghz);
        let steps = ((f - self.f_min_ghz) / self.f_step_ghz).round();
        (self.f_min_ghz + steps * self.f_step_ghz).min(self.f_max_ghz)
    }
}

/// Iterator over the DVFS frequency ladder.
#[derive(Debug, Clone)]
pub struct FrequencyLadder {
    spec: CpuSpec,
    idx: usize,
}

impl Iterator for FrequencyLadder {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        if self.idx >= self.spec.ladder_len() {
            return None;
        }
        let f = self.spec.f_min_ghz + self.idx as f64 * self.spec.f_step_ghz;
        self.idx += 1;
        Some(f.min(self.spec.f_max_ghz))
    }
}

impl ExactSizeIterator for FrequencyLadder {
    fn len(&self) -> usize {
        self.spec.ladder_len() - self.idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_matches_paper_sweep() {
        // 800 MHz → 2.0 GHz at 50 MHz: 25 points; → 2.2 GHz: 29 points.
        assert_eq!(Chip::Broadwell.spec().ladder_len(), 25);
        assert_eq!(Chip::Skylake.spec().ladder_len(), 29);
        let bd: Vec<f64> = Chip::Broadwell.spec().ladder().collect();
        assert_eq!(bd.len(), 25);
        assert!((bd[0] - 0.8).abs() < 1e-12);
        assert!((bd[24] - 2.0).abs() < 1e-12);
        assert!((bd[1] - 0.85).abs() < 1e-12);
    }

    #[test]
    fn tdp_matches_paper_table() {
        assert_eq!(Chip::Broadwell.spec().tdp_w, 45.0);
        assert_eq!(Chip::Skylake.spec().tdp_w, 85.0);
    }

    #[test]
    fn voltage_is_monotone_nondecreasing() {
        for chip in Chip::ALL {
            let spec = chip.spec();
            let mut prev = 0.0;
            for f in spec.ladder() {
                let v = spec.voltage(f);
                assert!(v >= prev, "{}: V({f}) = {v} < {prev}", chip.name());
                prev = v;
            }
        }
    }

    #[test]
    fn skylake_has_a_voltage_knee() {
        let s = Chip::Skylake.spec();
        // Below the knee the curve is nearly flat...
        let low_rise = s.voltage(1.8) - s.voltage(0.8);
        // ...above it, steep.
        let high_rise = s.voltage(2.2) - s.voltage(1.9);
        assert!(high_rise > 5.0 * low_rise, "low {low_rise} high {high_rise}");
    }

    #[test]
    fn broadwell_curve_is_more_gradual_than_skylake() {
        // The relative rise below the knee separates the two fits: the
        // paper regresses b ≈ 5.3 for Broadwell vs b ≈ 23 for Skylake.
        let b = Chip::Broadwell.spec();
        let s = Chip::Skylake.spec();
        let below_knee = |spec: &CpuSpec, f0: f64, f1: f64| spec.voltage(f1) - spec.voltage(f0);
        let bd = below_knee(&b, 0.8, 1.7);
        let sk = below_knee(&s, 0.8, 1.85);
        assert!(bd > 3.0 * sk, "broadwell {bd} vs skylake {sk}");
    }

    #[test]
    fn dynamic_power_grows_superlinearly() {
        for chip in Chip::ALL {
            let spec = chip.spec();
            let p_lo = spec.dynamic_power(spec.f_min_ghz);
            let p_hi = spec.dynamic_power(spec.f_max_ghz);
            let freq_ratio = spec.f_max_ghz / spec.f_min_ghz;
            assert!(
                p_hi / p_lo > freq_ratio,
                "{}: power ratio {} ≤ frequency ratio {}",
                chip.name(),
                p_hi / p_lo,
                freq_ratio
            );
        }
    }

    #[test]
    fn snap_clamps_and_grids() {
        let b = Chip::Broadwell.spec();
        assert!((b.snap(0.5) - 0.8).abs() < 1e-12);
        assert!((b.snap(3.0) - 2.0).abs() < 1e-12);
        assert!((b.snap(1.026) - 1.05).abs() < 1e-12);
        assert!((b.snap(1.024) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_core_power_stays_below_tdp() {
        for chip in Chip::ALL {
            let spec = chip.spec();
            let p = spec.p_static_w + spec.dynamic_power(spec.f_max_ghz) + spec.p_mem_w;
            assert!(p < spec.tdp_w, "{}: {p} W ≥ TDP", chip.name());
        }
    }
}
