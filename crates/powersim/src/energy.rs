//! The energy model: (machine, frequency, work profile) → runtime & energy.
//!
//! A single-core job is modeled as three serialized phases:
//!
//! * **compute** — `compute_cycles / f`; draws static + dynamic power,
//!   where dynamic power is `c_eff · V(f)² · f` (the CMOS switching law
//!   that produces the paper's critical power slope);
//! * **memory stall** — `memory_bytes / mem_bw`; frequency-invariant,
//!   draws static + DRAM power;
//! * **I/O wait** — `io_bytes / net_bw`; frequency-invariant, draws
//!   static + NIC/storage power.
//!
//! Average power is total energy over total time, matching how the paper
//! computes `P_avg = E_total / t_run` from `perf` samples (Eqn 1).

use crate::cpu::CpuSpec;
use crate::nfs::NfsSpec;
use crate::workload::WorkProfile;
use serde::{Deserialize, Serialize};

/// A CPU plus the I/O path it writes through.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Machine {
    /// The processor.
    pub cpu: CpuSpec,
    /// The NFS/network write path.
    pub nfs: NfsSpec,
}

impl Machine {
    /// A machine with the chip-calibrated 10 GbE NFS path.
    pub fn new(cpu: CpuSpec) -> Self {
        let nfs = NfsSpec::for_chip(cpu.chip);
        Machine { cpu, nfs }
    }

    /// Shorthand for `Machine::new(chip.spec())`.
    pub fn for_chip(chip: crate::cpu::Chip) -> Self {
        Machine::new(chip.spec())
    }
}

/// Noise-free outcome of running one profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    /// Core clock used (GHz).
    pub f_ghz: f64,
    /// Wall time (s).
    pub runtime_s: f64,
    /// Total energy (J).
    pub energy_j: f64,
    /// Average power (W) = energy / runtime.
    pub avg_power_w: f64,
    /// Time in the compute phase (s).
    pub compute_s: f64,
    /// Time stalled on memory (s).
    pub memory_s: f64,
    /// Time waiting on I/O (s).
    pub io_s: f64,
}

/// Simulate `profile` on `machine` at `f_ghz` (must be within the ladder
/// range; callers typically use [`CpuSpec::snap`] first).
///
/// The outcome is linear in the profile: simulating a profile scaled by
/// `n` yields exactly `n×` the runtime and energy, which is what lets the
/// streaming pipeline account per-chunk energies that sum to the
/// whole-dump totals.
///
/// # Examples
///
/// The paper's core trade-off in four lines — a lower clock draws less
/// average power but stretches the runtime:
///
/// ```
/// use lcpio_powersim::{simulate, Chip, Machine, WorkProfile};
///
/// let m = Machine::for_chip(Chip::Broadwell);
/// let job = WorkProfile { compute_cycles: 30e9, memory_bytes: 160e9, ..Default::default() };
/// let fast = simulate(&m, m.cpu.f_max_ghz, &job);
/// let slow = simulate(&m, m.cpu.f_min_ghz, &job);
/// assert!(slow.avg_power_w < fast.avg_power_w);
/// assert!(slow.runtime_s > fast.runtime_s);
/// // The three phases tile the wall time exactly.
/// assert!((fast.compute_s + fast.memory_s + fast.io_s - fast.runtime_s).abs() < 1e-12);
/// ```
pub fn simulate(machine: &Machine, f_ghz: f64, profile: &WorkProfile) -> Measurement {
    let cpu = &machine.cpu;
    debug_assert!(
        f_ghz >= cpu.f_min_ghz - 1e-9 && f_ghz <= cpu.f_max_ghz + 1e-9,
        "frequency {f_ghz} outside [{}, {}]",
        cpu.f_min_ghz,
        cpu.f_max_ghz
    );
    let t_c = profile.compute_cycles / (f_ghz * 1e9);
    let t_m = profile.memory_bytes / (cpu.mem_bw_gbs * 1e9);
    let t_io = profile.io_bytes / (machine.nfs.net_bw_gbs * 1e9);
    let t = t_c + t_m + t_io;
    let dyn_w = cpu.dynamic_power(f_ghz);
    // Per-phase energies: static power is attributed to the phase it is
    // burned in, so the three terms sum exactly to the total.
    let e_c = (cpu.p_static_w + dyn_w * profile.compute_intensity) * t_c;
    let e_m = (cpu.p_static_w + cpu.p_mem_w + cpu.uncore_dyn_frac * dyn_w) * t_m;
    let e_io = (cpu.p_static_w + cpu.p_io_w + cpu.uncore_dyn_frac * dyn_w) * t_io;
    let e = e_c + e_m + e_io;
    if lcpio_trace::collecting() {
        lcpio_trace::counter_add("powersim.calls", 1);
        lcpio_trace::counter_add("powersim.compute_uj", (e_c * 1e6) as u64);
        lcpio_trace::counter_add("powersim.memory_uj", (e_m * 1e6) as u64);
        lcpio_trace::counter_add("powersim.io_uj", (e_io * 1e6) as u64);
    }
    Measurement {
        f_ghz,
        runtime_s: t,
        energy_j: e,
        avg_power_w: if t > 0.0 { e / t } else { 0.0 },
        compute_s: t_c,
        memory_s: t_m,
        io_s: t_io,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Chip;

    fn compression_like() -> WorkProfile {
        // ~0.52 compute fraction at f_max, like the paper's compression jobs.
        WorkProfile { compute_cycles: 30e9, memory_bytes: 160e9, ..Default::default() }
    }

    #[test]
    fn energy_equals_power_times_time() {
        let m = Machine::new(Chip::Broadwell.spec());
        let meas = simulate(&m, 1.5, &compression_like());
        assert!((meas.energy_j - meas.avg_power_w * meas.runtime_s).abs() < 1e-9);
    }

    #[test]
    fn runtime_decreases_with_frequency() {
        let m = Machine::new(Chip::Broadwell.spec());
        let slow = simulate(&m, 0.8, &compression_like());
        let fast = simulate(&m, 2.0, &compression_like());
        assert!(fast.runtime_s < slow.runtime_s);
    }

    #[test]
    fn power_increases_with_frequency() {
        for chip in Chip::ALL {
            let m = Machine::new(chip.spec());
            let spec = m.cpu;
            let slow = simulate(&m, spec.f_min_ghz, &compression_like());
            let fast = simulate(&m, spec.f_max_ghz, &compression_like());
            assert!(fast.avg_power_w > slow.avg_power_w, "{}", chip.name());
        }
    }

    #[test]
    fn broadwell_compression_scaled_power_matches_paper_range() {
        // The paper's fitted Broadwell model (Table IV) evaluates to 0.745
        // at f_min; Figure 1 bottoms out around 0.78. Accept that band.
        let m = Machine::new(Chip::Broadwell.spec());
        let lo = simulate(&m, 0.8, &compression_like()).avg_power_w;
        let hi = simulate(&m, 2.0, &compression_like()).avg_power_w;
        let scaled = lo / hi;
        assert!((0.65..0.85).contains(&scaled), "scaled={scaled}");
    }

    #[test]
    fn broadwell_power_savings_at_eqn3_frequency() {
        // §V-A1: lowering Broadwell/compression frequency by 12.5% yields
        // roughly 13–20% power savings (the paper quotes 19.4% from the
        // figures, 13% from its own fitted model).
        let m = Machine::new(Chip::Broadwell.spec());
        let base = simulate(&m, 2.0, &compression_like()).avg_power_w;
        let tuned = simulate(&m, 1.75, &compression_like()).avg_power_w;
        let savings = 1.0 - tuned / base;
        assert!((0.12..0.25).contains(&savings), "power savings {savings}");
    }

    #[test]
    fn skylake_power_is_flat_then_jumps() {
        // Figures 1/3: Skylake power barely moves below ~1.9 GHz, then
        // rises sharply — the behaviour behind its b≈23 fitted exponent.
        let m = Machine::new(Chip::Skylake.spec());
        let p = |f: f64| simulate(&m, f, &compression_like()).avg_power_w;
        let flat_rise = p(1.9) - p(0.8);
        let jump = p(2.2) - p(1.9);
        assert!(jump > flat_rise, "flat {flat_rise} jump {jump}");
    }

    #[test]
    fn io_heavy_profile_has_narrower_power_range() {
        // Figure 3 vs Figure 1: data writing scales to ~0.9, compression
        // to ~0.8 — I/O waits dilute the frequency-sensitive phase.
        let m = Machine::new(Chip::Broadwell.spec());
        let comp = compression_like();
        let write = m.nfs.write_profile(16e9);
        let scaled = |p: &WorkProfile| {
            simulate(&m, 0.8, p).avg_power_w / simulate(&m, 2.0, p).avg_power_w
        };
        assert!(scaled(&write) > scaled(&comp));
    }

    #[test]
    fn runtime_sensitivity_matches_paper_tradeoff() {
        // §V-A3: −12.5% frequency ⇒ ≈ +7.5% compression runtime.
        let m = Machine::new(Chip::Broadwell.spec());
        let p = compression_like();
        let base = simulate(&m, 2.0, &p).runtime_s;
        let tuned = simulate(&m, m.cpu.snap(0.875 * 2.0), &p).runtime_s;
        let increase = tuned / base - 1.0;
        assert!((0.04..0.11).contains(&increase), "runtime increase {increase}");
    }

    #[test]
    fn zero_profile_zero_outcome() {
        let m = Machine::new(Chip::Skylake.spec());
        let meas = simulate(&m, 1.0, &WorkProfile::default());
        assert_eq!(meas.runtime_s, 0.0);
        assert_eq!(meas.energy_j, 0.0);
        assert_eq!(meas.avg_power_w, 0.0);
    }

    #[test]
    fn phases_sum_to_runtime() {
        let m = Machine::new(Chip::Skylake.spec());
        let p = WorkProfile { compute_cycles: 1e9, memory_bytes: 2e9, io_bytes: 3e9, ..Default::default() };
        let meas = simulate(&m, 1.2, &p);
        assert!((meas.compute_s + meas.memory_s + meas.io_s - meas.runtime_s).abs() < 1e-12);
    }
}
