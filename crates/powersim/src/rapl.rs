//! RAPL-like energy counters.
//!
//! Intel's Running Average Power Limit exposes monotonically increasing
//! energy counters per power domain (package, DRAM, …), which `perf stat`
//! samples before and after a job to report `energy-pkg`. The simulated
//! equivalent accumulates the joules produced by the energy model; it is
//! thread-safe so concurrent sweep workers can share one meter.

use serde::{Deserialize, Serialize};
use std::sync::{Arc, Mutex};

/// A power domain, mirroring RAPL's split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// Whole-package energy (cores + uncore).
    Package,
    /// DRAM energy.
    Dram,
}

#[derive(Debug, Default)]
struct Counters {
    package_j: f64,
    dram_j: f64,
}

/// A shared, monotonically increasing energy meter.
#[derive(Debug, Clone, Default)]
pub struct EnergyMeter {
    inner: Arc<Mutex<Counters>>,
}

impl EnergyMeter {
    /// A fresh meter with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulate joules into a domain (called by the simulator).
    pub fn add(&self, domain: Domain, joules: f64) {
        debug_assert!(joules >= 0.0, "energy must be non-negative");
        let mut c = self.inner.lock().expect("meter lock");
        match domain {
            Domain::Package => c.package_j += joules,
            Domain::Dram => c.dram_j += joules,
        }
    }

    /// Read a domain counter (monotone, like `/sys/.../energy_uj`).
    pub fn read(&self, domain: Domain) -> f64 {
        let c = self.inner.lock().expect("meter lock");
        match domain {
            Domain::Package => c.package_j,
            Domain::Dram => c.dram_j,
        }
    }

    /// Snapshot both domains at once.
    pub fn snapshot(&self) -> (f64, f64) {
        let c = self.inner.lock().expect("meter lock");
        (c.package_j, c.dram_j)
    }
}

/// A `perf stat`-style interval: counter deltas between `start` and `stop`.
#[derive(Debug)]
pub struct EnergyInterval {
    meter: EnergyMeter,
    start_pkg: f64,
    start_dram: f64,
}

impl EnergyInterval {
    /// Begin an interval on `meter`.
    pub fn start(meter: &EnergyMeter) -> Self {
        let (p, d) = meter.snapshot();
        EnergyInterval { meter: meter.clone(), start_pkg: p, start_dram: d }
    }

    /// End the interval, returning (package J, DRAM J) consumed within it.
    pub fn stop(self) -> (f64, f64) {
        let (p, d) = self.meter.snapshot();
        (p - self.start_pkg, d - self.start_dram)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_monotonically() {
        let m = EnergyMeter::new();
        m.add(Domain::Package, 5.0);
        m.add(Domain::Package, 2.5);
        m.add(Domain::Dram, 1.0);
        assert_eq!(m.read(Domain::Package), 7.5);
        assert_eq!(m.read(Domain::Dram), 1.0);
    }

    #[test]
    fn intervals_report_deltas() {
        let m = EnergyMeter::new();
        m.add(Domain::Package, 10.0);
        let iv = EnergyInterval::start(&m);
        m.add(Domain::Package, 3.0);
        m.add(Domain::Dram, 0.5);
        let (p, d) = iv.stop();
        assert_eq!(p, 3.0);
        assert_eq!(d, 0.5);
    }

    #[test]
    fn meter_is_shared_across_clones() {
        let m = EnergyMeter::new();
        let m2 = m.clone();
        m.add(Domain::Dram, 4.0);
        assert_eq!(m2.read(Domain::Dram), 4.0);
    }

    #[test]
    fn concurrent_accumulation_is_lossless() {
        let m = EnergyMeter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.add(Domain::Package, 0.001);
                    }
                });
            }
        });
        assert!((m.read(Domain::Package) - 8.0).abs() < 1e-9);
    }
}
