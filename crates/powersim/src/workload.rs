//! Work profiles: the interface between real algorithm executions and the
//! simulated hardware.
//!
//! A [`WorkProfile`] abstracts *what a job does* — how many
//! frequency-scaled compute cycles it needs, how many bytes it streams
//! through memory, and how many bytes it pushes over the I/O path — without
//! saying anything about *which CPU at which frequency* runs it. The energy
//! model combines a profile with a [`crate::CpuSpec`] and a frequency to
//! produce runtime and energy.
//!
//! Profiles are additive (run one job after another) and scalable (the same
//! job on `k×` the data), which is how a compression of a scaled-down
//! sample field extrapolates to the paper's full-size datasets.

use serde::{Deserialize, Serialize};

/// Resource demands of one job, independent of CPU and frequency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkProfile {
    /// CPU work in cycles; executes at the core clock.
    pub compute_cycles: f64,
    /// Bytes streamed through the memory subsystem (frequency-invariant).
    pub memory_bytes: f64,
    /// Bytes moved over the network/storage path (frequency-invariant).
    pub io_bytes: f64,
    /// How hard the compute phase drives the core's switching logic,
    /// scaling dynamic power: ≈1.0 for dense compression kernels, lower
    /// for copy/syscall paths (the paper's data writing draws visibly less
    /// dynamic power than compression — Figure 3 vs Figure 1).
    pub compute_intensity: f64,
}

impl Default for WorkProfile {
    fn default() -> Self {
        WorkProfile {
            compute_cycles: 0.0,
            memory_bytes: 0.0,
            io_bytes: 0.0,
            compute_intensity: 1.0,
        }
    }
}

impl WorkProfile {
    /// A pure-compute job at full intensity.
    pub fn compute(cycles: f64) -> Self {
        WorkProfile { compute_cycles: cycles, ..Default::default() }
    }

    /// Sequential composition: this job followed by `other`. The combined
    /// intensity is the cycle-weighted average.
    pub fn then(self, other: WorkProfile) -> Self {
        let cycles = self.compute_cycles + other.compute_cycles;
        let intensity = if cycles > 0.0 {
            (self.compute_intensity * self.compute_cycles
                + other.compute_intensity * other.compute_cycles)
                / cycles
        } else {
            1.0
        };
        WorkProfile {
            compute_cycles: cycles,
            memory_bytes: self.memory_bytes + other.memory_bytes,
            io_bytes: self.io_bytes + other.io_bytes,
            compute_intensity: intensity,
        }
    }

    /// The same job on `k×` the data (k may be fractional).
    pub fn scaled(self, k: f64) -> Self {
        WorkProfile {
            compute_cycles: self.compute_cycles * k,
            memory_bytes: self.memory_bytes * k,
            io_bytes: self.io_bytes * k,
            compute_intensity: self.compute_intensity,
        }
    }

    /// True when the profile demands no work at all.
    pub fn is_empty(&self) -> bool {
        self.compute_cycles == 0.0 && self.memory_bytes == 0.0 && self.io_bytes == 0.0
    }

    /// Fraction of wall time spent in compute at the given frequency and
    /// bandwidths (GHz, GB/s). Diagnostic for calibrating the
    /// runtime-vs-frequency trade-off.
    pub fn compute_fraction(&self, f_ghz: f64, mem_bw_gbs: f64, io_bw_gbs: f64) -> f64 {
        let tc = self.compute_cycles / (f_ghz * 1e9);
        let tm = self.memory_bytes / (mem_bw_gbs * 1e9);
        let ti = self.io_bytes / (io_bw_gbs * 1e9);
        let total = tc + tm + ti;
        if total == 0.0 {
            0.0
        } else {
            tc / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn then_is_additive() {
        let a = WorkProfile { compute_cycles: 10.0, memory_bytes: 20.0, io_bytes: 30.0, ..Default::default() };
        let b = WorkProfile { compute_cycles: 1.0, memory_bytes: 2.0, io_bytes: 3.0, ..Default::default() };
        let c = a.then(b);
        assert_eq!(c.compute_cycles, 11.0);
        assert_eq!(c.memory_bytes, 22.0);
        assert_eq!(c.io_bytes, 33.0);
    }

    #[test]
    fn then_averages_intensity_by_cycles() {
        let a = WorkProfile { compute_cycles: 30.0, compute_intensity: 1.0, ..Default::default() };
        let b = WorkProfile { compute_cycles: 10.0, compute_intensity: 0.2, ..Default::default() };
        let c = a.then(b);
        assert!((c.compute_intensity - 0.8).abs() < 1e-12);
        // Two empty jobs keep the neutral intensity.
        assert_eq!(WorkProfile::default().then(WorkProfile::default()).compute_intensity, 1.0);
    }

    #[test]
    fn scaled_multiplies_everything_but_intensity() {
        let a = WorkProfile {
            compute_cycles: 10.0,
            memory_bytes: 20.0,
            io_bytes: 30.0,
            compute_intensity: 0.5,
        };
        let s = a.scaled(2.5);
        assert_eq!(s.compute_cycles, 25.0);
        assert_eq!(s.memory_bytes, 50.0);
        assert_eq!(s.io_bytes, 75.0);
        assert_eq!(s.compute_intensity, 0.5);
    }

    #[test]
    fn empty_detection() {
        assert!(WorkProfile::default().is_empty());
        assert!(!WorkProfile::compute(1.0).is_empty());
    }

    #[test]
    fn compute_fraction_falls_with_frequency() {
        // Higher clock shrinks only the compute term.
        let p = WorkProfile { compute_cycles: 1e9, memory_bytes: 1e9, ..Default::default() };
        let lo = p.compute_fraction(1.0, 10.0, 1.0);
        let hi = p.compute_fraction(2.0, 10.0, 1.0);
        assert!(hi < lo);
    }

    #[test]
    fn compute_fraction_of_empty_profile_is_zero() {
        assert_eq!(WorkProfile::default().compute_fraction(1.0, 1.0, 1.0), 0.0);
    }
}
