#![warn(missing_docs)]
//! # lcpio-powersim — CPU power/DVFS/energy simulator
//!
//! The paper's measurements require CloudLab m510 (Broadwell) and c220g5
//! (Skylake) nodes with RAPL counters, `cpufreq-set` access, and an NFS
//! mount on 10 GbE — none of which exist in a development sandbox. This
//! crate provides the simulated equivalent of that test bench:
//!
//! * [`cpu`] — per-chip specifications with calibrated voltage–frequency
//!   curves (Broadwell's steady ramp vs Skylake's flat-then-knee, which
//!   drive the paper's fitted exponents of ≈5 vs ≈23);
//! * [`dvfs`] — a `cpufreq-set`-style frequency controller;
//! * [`workload`] — frequency-independent work profiles (compute cycles,
//!   memory traffic, I/O bytes);
//! * [`energy`] — the three-phase runtime/energy model that produces the
//!   critical power slope;
//! * [`nfs`] — the single-core NFS write path over 10 GbE;
//! * [`rapl`] — monotone, thread-safe energy counters;
//! * [`perf`] — a `perf stat`-style harness with per-repetition Gaussian
//!   noise and 95% confidence intervals.
//!
//! ```
//! use lcpio_powersim::{Chip, Machine, Perf, WorkProfile};
//!
//! let machine = Machine::new(Chip::Broadwell.spec());
//! let job = WorkProfile { compute_cycles: 30e9, memory_bytes: 160e9, ..Default::default() };
//! let mut perf = Perf::new(42);
//! let fast = perf.measure(&machine, 2.0, &job, 10);
//! let slow = perf.measure(&machine, 0.8, &job, 10);
//! assert!(slow.power_w < fast.power_w);     // lower clock, lower power
//! assert!(slow.runtime_s > fast.runtime_s); // ... but longer runtime
//! ```

pub mod cpu;
pub mod dvfs;
pub mod energy;
pub mod multicore;
pub mod nfs;
pub mod perf;
pub mod rapl;
pub mod workload;

pub use cpu::{Chip, CpuSpec, FrequencyLadder, VfCurve};
pub use dvfs::{CpuFreqController, DvfsError, Governor};
pub use energy::{simulate, Machine, Measurement};
pub use multicore::NodeSpec;
pub use nfs::NfsSpec;
pub use perf::{Perf, PerfStat, DEFAULT_NOISE_SIGMA};
pub use rapl::{Domain, EnergyInterval, EnergyMeter};
pub use workload::WorkProfile;

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end sanity: sweep the full ladder and confirm the macro
    /// behaviours the paper's Figures 1–4 rely on.
    #[test]
    fn full_ladder_sweep_has_paper_shape() {
        for chip in Chip::ALL {
            let machine = Machine::new(chip.spec());
            let job = WorkProfile { compute_cycles: 30e9, memory_bytes: 160e9, ..Default::default() };
            let mut perf = Perf::with_sigma(1, 0.0);
            let stats: Vec<PerfStat> = machine
                .cpu
                .ladder()
                .map(|f| perf.measure(&machine, f, &job, 1))
                .collect();
            // Power monotone nondecreasing in f; runtime monotone nonincreasing.
            for w in stats.windows(2) {
                assert!(w[1].power_w >= w[0].power_w - 1e-9, "{}", chip.name());
                assert!(w[1].runtime_s <= w[0].runtime_s + 1e-12, "{}", chip.name());
            }
            // Energy curve: minimum strictly inside the ladder would be
            // ideal, but at minimum the extremes must not both be optimal...
            let e_min = stats.iter().map(|s| s.energy_j).fold(f64::MAX, f64::min);
            let e_fmax = stats.last().unwrap().energy_j;
            assert!(e_min < e_fmax, "{}: lowering f must save energy", chip.name());
        }
    }

    /// The paper's Eqn-3 recommendation must save energy on compression
    /// for both chips and on Broadwell data writing; Skylake data writing
    /// is at worst energy-neutral (its runtime and power are both nearly
    /// stagnant — §V-A3).
    #[test]
    fn eqn3_tuning_saves_energy() {
        for chip in Chip::ALL {
            let machine = Machine::new(chip.spec());
            let fmax = machine.cpu.f_max_ghz;
            let comp = WorkProfile { compute_cycles: 30e9, memory_bytes: 160e9, ..Default::default() };
            let base = simulate(&machine, fmax, &comp);
            let tuned = simulate(&machine, machine.cpu.snap(0.875 * fmax), &comp);
            let savings = 1.0 - tuned.energy_j / base.energy_j;
            assert!(
                (0.05..0.25).contains(&savings),
                "{} compression savings {savings}",
                chip.name()
            );

            let write = machine.nfs.write_profile(8e9);
            let base = simulate(&machine, fmax, &write);
            let tuned = simulate(&machine, machine.cpu.snap(0.85 * fmax), &write);
            match chip {
                Chip::Broadwell => assert!(
                    tuned.energy_j < base.energy_j,
                    "Broadwell write tuning must save energy"
                ),
                Chip::Skylake | Chip::EpycLike => assert!(
                    tuned.energy_j < base.energy_j * 1.02,
                    "{} write tuning must be ~energy-neutral",
                    chip.name()
                ),
            }
        }
    }
}
