//! Node-level (multi-core) energy model — extension.
//!
//! The paper measures single-core compression and I/O, but its motivation
//! is exascale: production dumps shard a field across every core of a
//! node. This module scales the single-core model up: `n` cores execute
//! equal shards of the compute work concurrently, memory bandwidth and the
//! NIC are *shared* (and can saturate), package static power is paid once,
//! and per-core dynamic power multiplies.
//!
//! The interesting consequence for the paper's story: with many cores the
//! job becomes bandwidth-bound, the frequency-sensitive fraction shrinks,
//! and DVFS tuning saves even more power for even less runtime cost —
//! exactly the regime the paper's conclusions aim at.

use crate::cpu::CpuSpec;
use crate::energy::{Machine, Measurement};
use crate::workload::WorkProfile;
use serde::Serialize;

/// Node-level parameters beyond the per-core spec.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct NodeSpec {
    /// The per-core CPU specification (and chip-level constants).
    pub cpu: CpuSpec,
    /// Physical cores available.
    pub cores: u32,
    /// Node memory bandwidth shared by all cores (GB/s). Typically well
    /// below `cores × per-core bandwidth`.
    pub node_mem_bw_gbs: f64,
    /// Static power of the whole package+DRAM domain (W); replaces the
    /// single-core attribution in [`CpuSpec::p_static_w`].
    pub node_static_w: f64,
}

impl NodeSpec {
    /// A node built from a chip preset with typical shared-resource caps.
    pub fn for_machine(machine: &Machine, cores: u32) -> Self {
        let cpu = machine.cpu;
        NodeSpec {
            cpu,
            cores,
            // Shared bandwidth: ~4× a single core's streaming share.
            node_mem_bw_gbs: cpu.mem_bw_gbs * 4.0,
            // The single-core attribution already contains the package
            // floor; the whole node adds per-core leakage on top.
            node_static_w: cpu.p_static_w + 1.2 * cores as f64,
        }
    }

    /// Simulate `profile` split evenly across `active` cores at `f_ghz`,
    /// with the node's shared NFS path (single 10 GbE link).
    pub fn simulate(
        &self,
        machine: &Machine,
        f_ghz: f64,
        profile: &WorkProfile,
        active: u32,
    ) -> Measurement {
        let active = active.clamp(1, self.cores) as f64;
        // Per-core compute time on the shard.
        let t_c = profile.compute_cycles / active / (f_ghz * 1e9);
        // Memory: all cores stream concurrently into the shared controller.
        let eff_bw = self.node_mem_bw_gbs.min(self.cpu.mem_bw_gbs * active);
        let t_m = profile.memory_bytes / (eff_bw * 1e9);
        // I/O: one NIC, shared.
        let t_io = profile.io_bytes / (machine.nfs.net_bw_gbs * 1e9);
        let t = t_c + t_m + t_io;
        let dyn_w = self.cpu.dynamic_power(f_ghz) * profile.compute_intensity * active;
        let e = self.node_static_w * t
            + dyn_w * t_c
            + self.cpu.p_mem_w * active.sqrt() * t_m
            + self.cpu.p_io_w * t_io;
        Measurement {
            f_ghz,
            runtime_s: t,
            energy_j: e,
            avg_power_w: if t > 0.0 { e / t } else { 0.0 },
            compute_s: t_c,
            memory_s: t_m,
            io_s: t_io,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Chip;

    fn job() -> WorkProfile {
        WorkProfile { compute_cycles: 240e9, memory_bytes: 1280e9, ..Default::default() }
    }

    fn node(chip: Chip, cores: u32) -> (Machine, NodeSpec) {
        let m = Machine::for_chip(chip);
        let n = NodeSpec::for_machine(&m, cores);
        (m, n)
    }

    #[test]
    fn more_cores_run_faster() {
        let (m, n) = node(Chip::Broadwell, 8);
        let one = n.simulate(&m, 2.0, &job(), 1);
        let eight = n.simulate(&m, 2.0, &job(), 8);
        assert!(eight.runtime_s < one.runtime_s / 2.0, "{} vs {}", eight.runtime_s, one.runtime_s);
    }

    #[test]
    fn speedup_saturates_at_shared_bandwidth() {
        // Memory-heavy jobs stop scaling once the node controller is full.
        let (m, n) = node(Chip::Broadwell, 16);
        let s4 = n.simulate(&m, 2.0, &job(), 4).runtime_s;
        let s16 = n.simulate(&m, 2.0, &job(), 16).runtime_s;
        let scaling = s4 / s16;
        assert!(scaling < 3.0, "4→16 cores gave {scaling}x — bandwidth cap missing");
    }

    #[test]
    fn node_power_exceeds_single_core_power() {
        let (m, n) = node(Chip::Skylake, 8);
        let node_p = n.simulate(&m, 2.2, &job(), 8).avg_power_w;
        let core_p = crate::energy::simulate(&m, 2.2, &job()).avg_power_w;
        assert!(node_p > core_p);
    }

    #[test]
    fn tuning_saves_more_on_saturated_nodes() {
        // The paper's conclusion strengthens at node scale: once memory-
        // bound, dropping the clock costs almost no runtime.
        let (m, n) = node(Chip::Broadwell, 16);
        let fmax = m.cpu.f_max_ghz;
        let tuned_f = m.cpu.snap(0.875 * fmax);

        let single_base = crate::energy::simulate(&m, fmax, &job());
        let single_tuned = crate::energy::simulate(&m, tuned_f, &job());
        let single_rt_cost = single_tuned.runtime_s / single_base.runtime_s - 1.0;

        let node_base = n.simulate(&m, fmax, &job(), 16);
        let node_tuned = n.simulate(&m, tuned_f, &job(), 16);
        let node_rt_cost = node_tuned.runtime_s / node_base.runtime_s - 1.0;
        let node_savings = 1.0 - node_tuned.energy_j / node_base.energy_j;

        assert!(
            node_rt_cost < single_rt_cost,
            "node runtime cost {node_rt_cost} should undercut single-core {single_rt_cost}"
        );
        assert!(node_savings > 0.05, "node energy savings {node_savings}");
    }

    #[test]
    fn active_core_count_is_clamped() {
        let (m, n) = node(Chip::Broadwell, 4);
        let a = n.simulate(&m, 1.5, &job(), 0);
        let b = n.simulate(&m, 1.5, &job(), 1);
        assert_eq!(a.runtime_s, b.runtime_s);
        let c = n.simulate(&m, 1.5, &job(), 99);
        let d = n.simulate(&m, 1.5, &job(), 4);
        assert_eq!(c.runtime_s, d.runtime_s);
    }
}
