//! NFS write-path model.
//!
//! The paper's data-transit experiments copy 1–16 GB buffers to an NFS
//! mount over 10 Gb Ethernet with a single core. That path costs CPU work
//! (buffer copies, RPC marshalling, TCP checksums — all frequency-scaled)
//! plus network serialization time (frequency-invariant). The calibrated
//! split reproduces the paper's observation that lowering the clock 15%
//! raises write runtime by ≈9.3% (§V-A3): roughly half the wall time is
//! CPU-bound even for "pure I/O".

use crate::workload::WorkProfile;
use serde::{Deserialize, Serialize};

/// Parameters of the NFS write path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NfsSpec {
    /// Network bandwidth in GB/s (10 GbE ⇒ 1.25 GB/s line rate).
    pub net_bw_gbs: f64,
    /// CPU cycles spent per byte written (copies, RPC, checksums).
    pub cpu_cycles_per_byte: f64,
    /// Memory traffic per byte written (source read + socket buffer copy).
    pub mem_bytes_per_byte: f64,
    /// Dynamic-power intensity of the copy/syscall path (memcpy keeps far
    /// fewer execution units busy than a compression kernel).
    pub compute_intensity: f64,
}

impl Default for NfsSpec {
    fn default() -> Self {
        NfsSpec {
            net_bw_gbs: 1.25,
            cpu_cycles_per_byte: 1.9,
            mem_bytes_per_byte: 1.0,
            compute_intensity: 0.45,
        }
    }
}

impl NfsSpec {
    /// The calibrated write path for a given chip. The paper observes that
    /// Skylake's write runtime is nearly stagnant across the frequency
    /// range (§V-A3) — its kernel path retires far fewer cycles per byte —
    /// while Broadwell's is distinctly frequency-sensitive (+9.3% runtime
    /// at −15% clock).
    pub fn for_chip(chip: crate::cpu::Chip) -> Self {
        match chip {
            crate::cpu::Chip::Broadwell => NfsSpec::default(),
            crate::cpu::Chip::Skylake => {
                NfsSpec { cpu_cycles_per_byte: 0.35, ..NfsSpec::default() }
            }
            // Between the two Intel kernels' per-byte costs.
            crate::cpu::Chip::EpycLike => {
                NfsSpec { cpu_cycles_per_byte: 1.1, ..NfsSpec::default() }
            }
        }
    }

    /// Work profile for writing `bytes` to the NFS mount.
    ///
    /// # Examples
    ///
    /// ```
    /// use lcpio_powersim::{simulate, Chip, Machine};
    ///
    /// let m = Machine::for_chip(Chip::Broadwell);
    /// let write = m.nfs.write_profile(4e9); // 4 GB to the NFS mount
    /// let meas = simulate(&m, m.cpu.f_max_ghz, &write);
    /// // CPU work (copies, RPC, checksums) keeps the achieved bandwidth
    /// // below the 1.25 GB/s wire rate.
    /// assert!(meas.runtime_s > m.nfs.wire_time_s(4e9));
    /// ```
    pub fn write_profile(&self, bytes: f64) -> WorkProfile {
        WorkProfile {
            compute_cycles: bytes * self.cpu_cycles_per_byte,
            memory_bytes: bytes * self.mem_bytes_per_byte,
            io_bytes: bytes,
            compute_intensity: self.compute_intensity,
        }
    }

    /// Line-rate lower bound on the transfer time (s).
    pub fn wire_time_s(&self, bytes: f64) -> f64 {
        bytes / (self.net_bw_gbs * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Chip;
    use crate::energy::{simulate, Machine};

    #[test]
    fn ten_gbe_line_rate() {
        let nfs = NfsSpec::default();
        // 1 GB at 1.25 GB/s = 0.8 s on the wire.
        assert!((nfs.wire_time_s(1e9) - 0.8).abs() < 1e-9);
    }

    #[test]
    fn write_profile_scales_linearly() {
        let nfs = NfsSpec::default();
        let one = nfs.write_profile(1e9);
        let four = nfs.write_profile(4e9);
        assert!((four.compute_cycles - 4.0 * one.compute_cycles).abs() < 1.0);
        assert!((four.io_bytes - 4.0 * one.io_bytes).abs() < 1.0);
    }

    #[test]
    fn broadwell_transit_runtime_sensitivity_matches_paper() {
        // §V-A3: −15% frequency ⇒ ≈ +9.3% data-writing runtime.
        let m = Machine::new(Chip::Broadwell.spec());
        let p = m.nfs.write_profile(8e9);
        let base = simulate(&m, 2.0, &p).runtime_s;
        let tuned = simulate(&m, m.cpu.snap(0.85 * 2.0), &p).runtime_s;
        let increase = tuned / base - 1.0;
        assert!((0.05..0.14).contains(&increase), "runtime increase {increase}");
    }

    #[test]
    fn skylake_transit_runtime_is_stagnant() {
        // §V-A3: "the runtime is stagnant in data writing for the Skylake
        // processor" — its write path retires far fewer cycles per byte.
        let m = Machine::new(Chip::Skylake.spec());
        let p = m.nfs.write_profile(8e9);
        let base = simulate(&m, 2.2, &p).runtime_s;
        let slowest = simulate(&m, 0.8, &p).runtime_s;
        let skylake_full_range = slowest / base - 1.0;
        let tuned = simulate(&m, m.cpu.snap(0.85 * 2.2), &p).runtime_s;
        assert!(tuned / base - 1.0 < 0.05, "tuned increase {}", tuned / base - 1.0);
        // "Stagnant" relative to Broadwell's strong frequency sensitivity.
        let bd = Machine::new(Chip::Broadwell.spec());
        let bp = bd.nfs.write_profile(8e9);
        let bd_full_range =
            simulate(&bd, 0.8, &bp).runtime_s / simulate(&bd, 2.0, &bp).runtime_s - 1.0;
        assert!(
            skylake_full_range < 0.5 * bd_full_range,
            "skylake {skylake_full_range} vs broadwell {bd_full_range}"
        );
    }

    #[test]
    fn effective_bandwidth_below_line_rate() {
        // CPU work makes the achieved bandwidth visibly less than wire speed.
        let m = Machine::new(Chip::Broadwell.spec());
        let bytes = 4e9;
        let meas = simulate(&m, m.cpu.f_max_ghz, &m.nfs.write_profile(bytes));
        let bw = bytes / meas.runtime_s / 1e9;
        assert!(bw < 1.25, "bw={bw}");
        assert!(bw > 0.3, "bw={bw}");
    }
}
