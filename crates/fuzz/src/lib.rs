//! Deterministic mutation fuzzing of the decode surfaces.
//!
//! No external fuzzing engine: a seeded xorshift RNG mutates a corpus of
//! valid containers (every registry codec, wire-wrapped and legacy, plus
//! the `LCS1`/`LCW1` streaming containers and a few hand-forged headers
//! mirroring the failure-injection fixtures) and throws the results at
//! three targets:
//!
//! 1. **Envelope parse** — [`lcpio_wire::Envelope::parse`] + the validated
//!    frame index and every typed accessor.
//! 2. **Streaming decode** — [`lcpio_wire::StreamDecoder`] fed the same
//!    bytes in randomly sized pieces, differentially checked against the
//!    one-shot parse: both must accept or both must reject, and on accept
//!    the frames must agree byte-for-byte.
//! 3. **Registry auto-decompress** — the product decode path
//!    ([`lcpio_codec::CodecRegistry::decompress_auto`]) plus the streaming
//!    container decoder.
//! 4. **Codec-tag field** — the per-frame codec-tag TLV of mixed-codec
//!    streaming containers: the accessor must answer or error (never
//!    panic), and a tag list carrying an unknown codec id must never
//!    decode. The corpus seeds honest mixed-codec containers plus
//!    deterministic forgeries (unknown id, swapped tags, truncated tag
//!    list) for the mutators to work from.
//! 5. **Serve protocol** — the `LCRQ`/`LCRS` request/response frame
//!    codec of `lcpio-serve` (spec: `PROTOCOL.md`): decode must answer
//!    or error (never panic), a successful decode must agree with
//!    [`lcpio_serve::protocol::frame_len`] on where the frame ends, and
//!    re-encoding a decoded frame must decode back to the same value.
//!    Seeded with a valid frame for every operation and status family.
//!
//! Every run is reproducible from its seed; the harness panics (and the
//! smoke test fails) on the first input that panics a target or breaks the
//! differential contract.

use lcpio_codec::{registry, BoundSpec};
use lcpio_core::pipeline::{decode_stream, run_sequential, PipelineConfig, VecSink, STREAM_MAGIC};
use lcpio_core::PolicyKind;
use lcpio_wire::{Envelope, EnvelopeBuilder, StreamDecoder};

/// Splittable xorshift64* PRNG — deterministic and dependency-free.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeded generator (any seed, including 0, is fine).
    pub fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `0..n` (`n` > 0).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Valid-container corpus the mutators start from.
pub fn seed_corpus() -> Vec<Vec<u8>> {
    let data: Vec<f32> = (0..2048).map(|i| (i as f32 * 0.01).sin() * 10.0).collect();
    let mut corpus = Vec::new();
    // Every registry codec, serial and chunked, absolute and pointwise-
    // relative bounds — compression dispatches through the registry only.
    for name in ["sz", "zfp"] {
        let codec = registry().by_name(name).expect("registered codec");
        for bound in [BoundSpec::Absolute(1e-3), BoundSpec::PointwiseRelative(1e-3)] {
            for threads in [1usize, 2] {
                let enc = if threads > 1 {
                    codec.compress_chunked(&data, &[32, 64], bound, threads)
                } else {
                    codec.compress(&data, &[32, 64], bound)
                };
                if let Ok(enc) = enc {
                    // Both the legacy container and its wire-wrapped form.
                    if let Ok(wired) = lcpio_codec::wire::wrap(&enc.bytes) {
                        corpus.push(wired);
                    }
                    corpus.push(enc.bytes);
                }
            }
        }
    }
    // The streaming-pipeline container in both framings.
    for wire in [false, true] {
        let cfg = PipelineConfig {
            chunk_elements: 512,
            wire_format: wire,
            ..PipelineConfig::default()
        };
        let mut sink = VecSink::default();
        run_sequential(&data, &cfg, &mut sink).expect("pipeline");
        corpus.push(sink.bytes);
    }
    // Mixed-codec containers and their codec-tag forgeries.
    corpus.extend(mixed_tag_corpus());
    // Serve-protocol request and response frames.
    corpus.extend(serve_protocol_corpus());
    // Hand-forged headers mirroring the failure-injection fixtures:
    // forged element counts, absurd section lengths, bare magics.
    corpus.push(b"LCW1".to_vec());
    corpus.push(b"LCW1\x01\x00\x00".to_vec());
    corpus.push(b"LCS1".to_vec());
    let mut forged = b"LCS1".to_vec();
    forged.extend_from_slice(&u64::MAX.to_le_bytes());
    forged.extend_from_slice(&512u64.to_le_bytes());
    corpus.push(forged);
    let mut huge_section = b"SZL1\x00".to_vec();
    huge_section.extend_from_slice(&(1u32 << 20).to_le_bytes());
    huge_section.extend_from_slice(&(1u64 << 40).to_le_bytes());
    corpus.push(huge_section);
    corpus
}

/// Mixed-codec `LCW1` streaming containers plus deterministic codec-tag
/// forgeries: honest heuristic- and adaptive-planned streams over data
/// that alternates smooth and noisy blocks (so the tags genuinely mix),
/// then — rebuilt from the heuristic member — one container with an
/// unknown codec id spliced into the tag list, one with every SZ/ZFP tag
/// swapped, and one whose tag list is one entry short of the frame count.
pub fn mixed_tag_corpus() -> Vec<Vec<u8>> {
    let data: Vec<f32> = (0..4 * 512)
        .map(|i| {
            let block = i / 512;
            let x = (i % 512) as f32;
            if block % 2 == 0 { (x * 0.02).sin() } else { (x * 7919.0).sin() * 1e4 }
        })
        .collect();
    let mut out = Vec::new();
    for policy in [PolicyKind::Heuristic, PolicyKind::Adaptive] {
        let cfg = PipelineConfig {
            chunk_elements: 512,
            wire_format: true,
            policy,
            ..PipelineConfig::default()
        };
        let mut sink = VecSink::default();
        run_sequential(&data, &cfg, &mut sink).expect("mixed-codec pipeline");
        out.push(sink.bytes);
    }
    let honest = out[0].clone();
    let env = Envelope::parse(&honest).expect("valid envelope");
    let idx = env.index(&honest).expect("valid frame index");
    let frames: Vec<Vec<u8>> =
        idx.entries.iter().map(|e| honest[e.off..e.off + e.len].to_vec()).collect();
    let frame_refs: Vec<&[u8]> = frames.iter().map(Vec::as_slice).collect();
    let params = env.params().expect("LCS1 params").to_vec();
    let tags = env.codec_tags().expect("well-formed tags").expect("tagged stream").to_vec();
    let rebuild = |t: &[u8]| {
        EnvelopeBuilder::new(env.container).params(&params).codec_tags(t).build(&frame_refs)
    };
    let mut unknown = tags.clone();
    unknown[0] = 9; // no such codec id
    out.push(rebuild(&unknown));
    let swapped: Vec<u8> =
        tags.iter().map(|&t| match t { 1 => 2, 2 => 1, other => other }).collect();
    out.push(rebuild(&swapped));
    out.push(rebuild(&tags[..tags.len() - 1]));
    out
}

/// Serve-protocol seeds: one valid request frame per operation (with
/// the optional codec/bound/policy/dims fields exercised), plus response
/// frames spanning the status families (success-with-payload, typed
/// error, busy) — the envelope-mutation corpus for target 5.
pub fn serve_protocol_corpus() -> Vec<Vec<u8>> {
    use lcpio_serve::protocol::{status, Op, Request, Response};
    let data: Vec<f32> = (0..256).map(|i| (i as f32 * 0.03).cos()).collect();
    let container = registry()
        .by_name("sz")
        .expect("registered codec")
        .compress(&data, &[256], BoundSpec::Absolute(1e-3))
        .expect("seed compress")
        .bytes;
    let mut out = vec![
        Request::compress(
            1,
            &data,
            &[16, 16],
            lcpio_codec::policy::CodecId::Sz,
            BoundSpec::PointwiseRelative(1e-2),
            PolicyKind::Adaptive,
        )
        .encode(),
        Request::decompress(2, &container).encode(),
        Request::info(3, &container).encode(),
        Request::control(42, Op::Ping).encode(),
        Request::control(5, Op::Shutdown).encode(),
    ];
    // A minimal compress request: every optional field absent.
    let mut bare = Request::control(6, Op::Compress);
    bare.dims = vec![256];
    bare.payload = data.iter().flat_map(|v| v.to_le_bytes()).collect();
    out.push(bare.encode());
    // Responses: an OK carrying a container, a decompress-shaped OK with
    // dims, and typed rejections.
    let mut ok = Response::of_status(1, status::OK, "");
    ok.latency_us = 1234;
    ok.energy_uj = 56789;
    ok.codec = Some(lcpio_codec::policy::CodecId::Sz);
    ok.payload = container;
    out.push(ok.encode());
    let mut restored = Response::of_status(2, status::OK, "");
    restored.dims = vec![16, 16];
    restored.payload = vec![0u8; 64];
    out.push(restored.encode());
    out.push(Response::of_status(7, status::BUSY, "every worker queue is full").encode());
    out.push(Response::of_status(0, status::MALFORMED, "duplicate TLV tag").encode());
    out
}

/// Target 5: the serve-protocol frame codec. Decode must never panic; a
/// successful decode must agree with `frame_len` about where the frame
/// ends; re-encoding the decoded value must decode back equal (the codec
/// is lossless modulo unknown TLV tags, which re-encoding drops).
pub fn target_serve_protocol(bytes: &[u8]) {
    use lcpio_serve::protocol::{frame_len, Request, Response};
    if let Ok((req, used)) = Request::decode(bytes) {
        assert!(used <= bytes.len(), "request decode consumed past the buffer");
        assert_eq!(
            frame_len(&bytes[..used]).expect("decoded frame has sound lengths"),
            Some(used),
            "frame_len and Request::decode disagree on the frame boundary"
        );
        let rewired = req.encode();
        let (again, n) = Request::decode(&rewired).expect("re-encoded request decodes");
        assert_eq!(n, rewired.len());
        assert_eq!(again, req, "request round-trip drifted");
    }
    if let Ok((resp, used)) = Response::decode(bytes) {
        assert!(used <= bytes.len(), "response decode consumed past the buffer");
        assert_eq!(
            frame_len(&bytes[..used]).expect("decoded frame has sound lengths"),
            Some(used),
            "frame_len and Response::decode disagree on the frame boundary"
        );
        let rewired = resp.encode();
        let (again, n) = Response::decode(&rewired).expect("re-encoded response decodes");
        assert_eq!(n, rewired.len());
        assert_eq!(again, resp, "response round-trip drifted");
    }
    // frame_len itself must answer or error on any prefix, never panic.
    let _ = frame_len(bytes);
}

/// Mutate `input` in place-ish: flips, overwrites, truncations, splices,
/// and insertions, 1–4 of them per call.
pub fn mutate(input: &[u8], rng: &mut Rng) -> Vec<u8> {
    let mut out = input.to_vec();
    for _ in 0..(1 + rng.below(4)) {
        if out.is_empty() {
            out.push(rng.next_u64() as u8);
            continue;
        }
        match rng.below(5) {
            0 => {
                let i = rng.below(out.len());
                out[i] ^= 1 << rng.below(8);
            }
            1 => {
                let i = rng.below(out.len());
                out[i] = rng.next_u64() as u8;
            }
            2 => out.truncate(rng.below(out.len() + 1)),
            3 => {
                // Splice a window from one offset over another.
                let len = 1 + rng.below(9.min(out.len()));
                let src = rng.below(out.len() - len + 1);
                let dst = rng.below(out.len() - len + 1);
                let window: Vec<u8> = out[src..src + len].to_vec();
                out[dst..dst + len].copy_from_slice(&window);
            }
            _ => {
                let i = rng.below(out.len() + 1);
                out.insert(i, rng.next_u64() as u8);
            }
        }
    }
    out
}

/// Target 1: one-shot envelope parse + frame index + typed accessors.
/// Returns the frame payloads when the input is a valid envelope.
pub fn target_envelope_parse(bytes: &[u8]) -> Option<Vec<Vec<u8>>> {
    let env = Envelope::parse(bytes).ok()?;
    let idx = env.index(bytes).ok()?;
    // Typed accessors must error or answer — never panic — regardless of
    // what the TLV block claims.
    let _ = env.element_type();
    let _ = env.dims();
    let _ = env.chunk_table();
    let _ = env.params();
    Some(idx.entries.iter().map(|e| bytes[e.off..e.off + e.len].to_vec()).collect())
}

/// Target 2: incremental decode in randomly sized pieces, differentially
/// checked against the one-shot parse.
pub fn target_stream_decode(bytes: &[u8], rng: &mut Rng) {
    let oneshot = target_envelope_parse(bytes);
    let mut dec = StreamDecoder::new();
    let mut frames = Vec::new();
    let mut pos = 0usize;
    let mut failed = false;
    while pos < bytes.len() {
        let step = 1 + rng.below(97);
        let end = (pos + step).min(bytes.len());
        match dec.feed(&bytes[pos..end]) {
            Ok(mut f) => frames.append(&mut f),
            Err(_) => {
                failed = true;
                break;
            }
        }
        pos = end;
    }
    let ok = !failed && dec.finish().is_ok() && (bytes.is_empty() || dec.is_done());
    match (ok, oneshot) {
        (true, Some(expect)) => {
            let got: Vec<Vec<u8>> = frames.into_iter().map(|f| f.payload).collect();
            assert_eq!(got, expect, "streamed and one-shot decode disagree on frame payloads");
        }
        (true, None) => panic!("streaming decoder accepted an envelope the one-shot parse rejects"),
        (false, Some(_)) => {
            panic!("streaming decoder rejected an envelope the one-shot parse accepts")
        }
        (false, None) => {}
    }
}

/// Target 3: the product decode surface — registry auto-decompress (f32
/// and f64) and the streaming-container decoder.
pub fn target_registry_auto(bytes: &[u8]) {
    let _ = registry().decompress_auto(bytes, 1);
    let _ = registry().decompress_auto_f64(bytes, 1);
    let _ = decode_stream(bytes);
}

/// Target 4: the codec-tag field. The accessor must answer or return a
/// typed error — never panic — and an `LCS1` streaming container whose
/// tag list carries an unknown codec id must never decode successfully.
pub fn target_codec_tags(bytes: &[u8]) {
    let Ok(env) = Envelope::parse(bytes) else { return };
    if let Ok(Some(tags)) = env.codec_tags() {
        if env.container == STREAM_MAGIC && tags.iter().any(|&t| t > 2) {
            assert!(
                decode_stream(bytes).is_err(),
                "container with an unknown codec id in its tag list must not decode"
            );
        }
    }
}

/// Run the harness: `iters` mutations (spread round-robin over the
/// corpus), stopping early after `max_seconds` if set. Returns the number
/// of inputs executed.
pub fn run(iters: u64, seed: u64, max_seconds: Option<f64>) -> u64 {
    let corpus = seed_corpus();
    let mut rng = Rng::new(seed);
    let t0 = std::time::Instant::now();
    let mut executed = 0u64;
    for i in 0..iters {
        if let Some(limit) = max_seconds {
            if t0.elapsed().as_secs_f64() >= limit {
                break;
            }
        }
        let base = &corpus[(i as usize) % corpus.len()];
        let input = mutate(base, &mut rng);
        let _ = target_envelope_parse(&input);
        target_stream_decode(&input, &mut rng);
        target_registry_auto(&input);
        target_codec_tags(&input);
        target_serve_protocol(&input);
        executed += 1;
    }
    executed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let a: Vec<u64> = (0..8).map(|_| Rng::new(42).next_u64()).collect();
        let mut r = Rng::new(42);
        assert!(a.iter().all(|&v| v == a[0]));
        let b: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert_eq!(b.len(), 8);
        assert!(b.windows(2).any(|w| w[0] != w[1]), "sequence must advance");
    }

    #[test]
    fn corpus_is_nonempty_and_mostly_valid() {
        let corpus = seed_corpus();
        assert!(corpus.len() >= 10, "expected a rich corpus, got {}", corpus.len());
        // The wire-wrapped members round-trip through target 1.
        let wired = corpus.iter().filter(|c| c.starts_with(b"LCW1") && c.len() > 8).count();
        assert!(wired >= 4, "expected several valid LCW1 seeds, got {wired}");
    }

    #[test]
    fn unmutated_corpus_passes_every_target() {
        let mut rng = Rng::new(7);
        for input in seed_corpus() {
            let _ = target_envelope_parse(&input);
            target_stream_decode(&input, &mut rng);
            target_registry_auto(&input);
            target_codec_tags(&input);
            target_serve_protocol(&input);
        }
    }

    #[test]
    fn serve_corpus_members_all_decode() {
        use lcpio_serve::protocol::{Request, Response};
        let members = serve_protocol_corpus();
        assert_eq!(members.len(), 10, "6 requests + 4 responses");
        let requests =
            members.iter().filter(|m| Request::decode(m).is_ok()).count();
        let responses =
            members.iter().filter(|m| Response::decode(m).is_ok()).count();
        assert_eq!(requests, 6, "every request seed decodes");
        assert_eq!(responses, 4, "every response seed decodes");
        for m in &members {
            target_serve_protocol(m);
        }
    }

    #[test]
    fn codec_tag_corpus_mixes_and_forgeries_are_rejected() {
        let members = mixed_tag_corpus();
        assert_eq!(members.len(), 5, "2 honest + 3 forged");
        let (honest, forged) = members.split_at(2);
        // The heuristic member genuinely mixes codecs — both SZ and ZFP
        // tags appear — and both honest members decode.
        let env = Envelope::parse(&honest[0]).expect("valid envelope");
        let tags = env.codec_tags().expect("well-formed").expect("tagged").to_vec();
        assert!(tags.contains(&1) && tags.contains(&2), "tags {tags:?} do not mix");
        for m in honest {
            decode_stream(m).expect("honest mixed-codec container decodes");
        }
        // Unknown codec id, swapped tags, and a short tag list are all
        // typed errors, matched in that order.
        for (member, needle) in forged.iter().zip([
            "unknown codec id",
            "codec tag mismatch",
            "wire envelope",
        ]) {
            let err = decode_stream(member).expect_err("forged member must not decode");
            assert!(err.to_string().contains(needle), "{needle}: got {err}");
        }
    }

    /// Small-budget smoke pass — the per-PR gate.
    #[test]
    fn smoke_two_thousand_mutated_inputs() {
        let executed = run(2_000, 0xC0FFEE, None);
        assert_eq!(executed, 2_000);
    }
}
