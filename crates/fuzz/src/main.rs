//! CLI driver for the deterministic mutation-fuzz harness.
//!
//! ```text
//! lcpio-fuzz [--iters N] [--seconds S] [--seed X]
//! ```
//!
//! Runs `N` mutated inputs (default 100 000) against every target,
//! stopping early after `S` seconds if given. Same seed, same inputs.

fn parse_arg<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    let pos = args.iter().position(|a| a == flag)?;
    let raw = args.get(pos + 1).unwrap_or_else(|| {
        eprintln!("flag {flag} needs a value");
        std::process::exit(2);
    });
    match raw.parse() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("bad value for {flag}: {raw}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("lcpio-fuzz [--iters N] [--seconds S] [--seed X]");
        return;
    }
    let iters: u64 = parse_arg(&args, "--iters").unwrap_or(100_000);
    let seconds: Option<f64> = parse_arg(&args, "--seconds");
    let seed: u64 = parse_arg(&args, "--seed").unwrap_or(0xDEFA17);
    let t0 = std::time::Instant::now();
    let executed = lcpio_fuzz::run(iters, seed, seconds);
    println!(
        "fuzz: {executed} inputs in {:.1} s (seed {seed:#x}) — no panics, no differential splits",
        t0.elapsed().as_secs_f64()
    );
}
