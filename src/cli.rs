//! Command-line interface logic (the `lcpio-cli` binary is a thin shim
//! over [`parse`] + [`run`] so everything here is unit-testable).
//!
//! Field files use a tiny self-describing container:
//!
//! ```text
//! magic  b"LCPF"
//! u8     element tag (0 = f32, 1 = f64)
//! u8     rank
//! u64×r  dims (LE)
//! ...    raw little-endian element data
//! ```
//!
//! Subcommands:
//!
//! ```text
//! gen        --dataset cesm|hacc|nyx|isabel --scale N --seed S -o field.lcpf
//! compress   --codec sz|zfp --eb 1e-3 [--rel|--pwrel] [--threads N] -i in.lcpf -o out.bin
//! decompress -i out.bin -o restored.lcpf
//! info       -i out.bin
//! codecs
//! quality    -a original.lcpf -b restored.lcpf
//! sweep      [--scale N] [--reps R] [--policy fixed|heuristic|adaptive]
//!            -o sweep.json        (alias: experiment)
//! tables     -i sweep.json
//! tune       -i sweep.json
//! dump       [--gb 512]
//! pipeline   --codec sz|zfp --eb 1e-3 [--threads N] [--queue-depth D]
//!            [--writers W] [--chunk-elems N] [--wire]
//!            [--policy fixed|heuristic|adaptive] -i in.lcpf -o out.lcs
//! restart    [--queue-depth D] [--readers R] [--workers W] [--streamed]
//!            [--policy fixed|heuristic|adaptive] -i in.lcs -o restored.lcpf
//! serve      (--socket PATH | --tcp HOST:PORT) [--workers N] [--queue-depth D]
//!            [--codec sz|zfp] [--eb 1e-3] [--policy fixed|heuristic|adaptive]
//!            [--timeout-ms T] [--drive N [--clients C] [--chunk-elems E]]
//! ```
//!
//! `--policy` selects the per-chunk codec/DVFS policy: `pipeline` plans
//! every chunk through it (non-fixed wire output carries the per-frame
//! codec-tag field), `restart` re-prices the modelled read-back energy
//! under it, `sweep` highlights its records from the policy axis, and
//! `serve` uses it as the default for requests that carry no `POLICY`
//! field. When the flag is absent the kind comes from `LCPIO_POLICY`
//! (default `fixed`).
//!
//! `serve` runs the `lcpio-serve` daemon (protocol spec: `PROTOCOL.md`).
//! Without `--drive` it serves until a client sends a `SHUTDOWN` request;
//! with `--drive N` it self-drives N mixed-workload requests through the
//! client driver, prints throughput and latency percentiles, then drains
//! and exits — the form the walkthrough and CI use.
//!
//! Codec dispatch goes through [`lcpio_codec::registry`]: `compress`
//! resolves the backend by name, `decompress`/`info` sniff the container
//! magic, and `codecs` prints the registry's supported-container table.
//!
//! Every subcommand additionally accepts `--metrics out.json` (anywhere
//! on the line): after the command finishes, the spans and counters
//! collected by `lcpio-trace` during the run are written to the given
//! path as JSON, together with the command name and wall time. With the
//! `trace` feature disabled the file is still written but the report is
//! empty.

use lcpio_core::characteristics::{
    compression_power_curves, compression_runtime_curves, transit_power_curves,
    transit_runtime_curves,
};
use lcpio_core::datadump::{run_data_dump, DataDumpConfig};
use lcpio_core::experiment::{run_full_sweep, ExperimentConfig, SweepResult};
use lcpio_core::models::{compression_model_table, transit_model_table};
use lcpio_core::report::{render_dump, render_model_table, render_tuning};
use lcpio_core::tuning::{evaluate_rule, TuningRule};
use lcpio_core::PolicyKind;
use lcpio_codec::{registry, render_container_table, BoundSpec, CodecError};
use lcpio_datagen::{metrics, Dataset};
use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Field-container magic.
pub const FIELD_MAGIC: [u8; 4] = *b"LCPF";

/// CLI errors with user-facing messages.
#[derive(Debug)]
pub enum CliError {
    /// Bad invocation; the string is the usage hint.
    Usage(String),
    /// Filesystem problem.
    Io(std::io::Error),
    /// Codec or pipeline failure.
    Codec(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Codec(m) => write!(f, "codec error: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

/// A parsed command, ready to run.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a synthetic field file.
    Gen {
        /// Which dataset generator to use.
        dataset: Dataset,
        /// Element-count divisor.
        scale: usize,
        /// RNG seed.
        seed: u64,
        /// Destination field file.
        output: PathBuf,
    },
    /// Compress a field file.
    Compress {
        /// "sz" or "zfp".
        codec: String,
        /// Error bound (absolute unless a relative flag is set).
        eb: f64,
        /// Use a value-range-relative bound (SZ only).
        rel: bool,
        /// Use a pointwise-relative bound (SZ only).
        pwrel: bool,
        /// Worker threads for chunked SZ/ZFP (0 or 1 = serial).
        threads: usize,
        /// Input field file.
        input: PathBuf,
        /// Output compressed file.
        output: PathBuf,
    },
    /// Decompress back into a field file (codec auto-detected).
    Decompress {
        /// Compressed input.
        input: PathBuf,
        /// Destination field file.
        output: PathBuf,
    },
    /// Print stream information.
    Info {
        /// File to describe.
        input: PathBuf,
    },
    /// List the registered codecs and their container formats.
    Codecs,
    /// Compare two field files.
    Quality {
        /// Original field.
        a: PathBuf,
        /// Reconstructed field.
        b: PathBuf,
    },
    /// Run the paper sweep and save it as JSON.
    Sweep {
        /// Dataset element-count divisor.
        scale: usize,
        /// Repetitions per measurement point.
        reps: u32,
        /// Policy whose records the summary highlights.
        policy: PolicyKind,
        /// Destination JSON file.
        output: PathBuf,
    },
    /// Print Tables IV/V from a saved sweep.
    Tables {
        /// Saved sweep JSON.
        input: PathBuf,
    },
    /// Print the Eqn-3 tuning evaluation from a saved sweep.
    Tune {
        /// Saved sweep JSON.
        input: PathBuf,
    },
    /// Run the Figure-6 data-dump study.
    Dump {
        /// Uncompressed volume in GB.
        gb: f64,
    },
    /// Stream a field through the overlapped compress→write pipeline.
    Pipeline {
        /// "sz" or "zfp".
        codec: String,
        /// Absolute error bound for every chunk.
        eb: f64,
        /// Compression worker threads (0 = all available cores).
        threads: usize,
        /// Bounded-queue depth between the stages (≥ 1).
        queue_depth: usize,
        /// Writer workers draining the queue (≥ 1).
        writers: usize,
        /// Elements per chunk.
        chunk_elems: usize,
        /// Emit the `LCW1` wire envelope instead of the legacy `LCS1`
        /// header (`--wire`).
        wire: bool,
        /// Per-chunk codec/DVFS policy planning every chunk.
        policy: PolicyKind,
        /// Input field file.
        input: PathBuf,
        /// Output streaming container (`LCS1` legacy or `LCW1` wire).
        output: PathBuf,
    },
    /// Restart: stream an `LCS1`/`LCW1` container back through the
    /// overlapped read→decompress pipeline into a field file.
    Restart {
        /// Bounded prefetch-queue depth between read and decode (≥ 1).
        queue_depth: usize,
        /// Reader workers issuing positioned frame reads (≥ 1).
        readers: usize,
        /// Decode workers draining the prefetch queue (0 = all cores).
        workers: usize,
        /// Decode incrementally from a forward-only read of the file
        /// (`--streamed`) instead of positioned frame reads.
        streamed: bool,
        /// Policy the modelled read-back energy is re-priced under.
        policy: PolicyKind,
        /// Input streaming container (`LCS1` legacy or `LCW1` wire).
        input: PathBuf,
        /// Destination field file.
        output: PathBuf,
    },
    /// Run the compression-service daemon (`lcpio-serve`).
    Serve {
        /// Unix socket path (exactly one of `socket`/`tcp`).
        socket: Option<PathBuf>,
        /// TCP `host:port` address (exactly one of `socket`/`tcp`).
        tcp: Option<String>,
        /// Worker shards (each with its own codec scratch and queue).
        workers: usize,
        /// Bounded queue depth per shard (full ⇒ typed `BUSY`).
        queue_depth: usize,
        /// Default codec for requests that carry no `CODEC` field.
        codec: String,
        /// Default absolute error bound for requests without `BOUND`.
        eb: f64,
        /// Default policy for requests that carry no `POLICY` field.
        policy: PolicyKind,
        /// Mid-frame read timeout (slow-loris guard), milliseconds.
        timeout_ms: u64,
        /// Self-drive this many mixed-workload requests then drain
        /// (0 = serve until a client `SHUTDOWN`).
        drive: usize,
        /// Concurrent driver connections (with `--drive`).
        clients: usize,
        /// Elements per driven request chunk (with `--drive`).
        chunk_elems: usize,
    },
}

/// Top-level usage text.
pub fn usage() -> &'static str {
    "lcpio-cli <gen|compress|decompress|info|codecs|quality|sweep|tables|tune|dump|pipeline|restart|serve> [options]\n\
     (`experiment` is an alias for `sweep`; pipeline/restart/sweep/serve accept \
     --policy fixed|heuristic|adaptive)\n\
     run `lcpio-cli <command>` with missing options to see its requirements"
}

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, CliError> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if !a.starts_with("--") && !a.starts_with('-') {
            return Err(CliError::Usage(format!("unexpected argument `{a}`")));
        }
        let key = a.trim_start_matches('-').to_string();
        // Boolean flags take no value.
        if matches!(key.as_str(), "rel" | "pwrel" | "wire" | "streamed") {
            map.insert(key, "true".to_string());
            i += 1;
            continue;
        }
        let val = args
            .get(i + 1)
            .ok_or_else(|| CliError::Usage(format!("flag `{a}` needs a value")))?;
        map.insert(key, val.clone());
        i += 2;
    }
    Ok(map)
}

fn req<'m>(m: &'m HashMap<String, String>, keys: &[&str]) -> Result<&'m str, CliError> {
    for k in keys {
        if let Some(v) = m.get(*k) {
            return Ok(v);
        }
    }
    Err(CliError::Usage(format!("missing required flag --{}", keys[0])))
}

/// Parse `--policy`; absent means "whatever `LCPIO_POLICY` says" (which
/// itself defaults to fixed), so CI legs can retarget whole suites
/// without touching every invocation.
fn parse_policy(m: &HashMap<String, String>) -> Result<PolicyKind, CliError> {
    match m.get("policy") {
        None => Ok(PolicyKind::from_env()),
        Some(s) => PolicyKind::parse(s).ok_or_else(|| {
            CliError::Usage(format!("unknown policy `{s}`; expected fixed|heuristic|adaptive"))
        }),
    }
}

fn parse_dataset(s: &str) -> Result<Dataset, CliError> {
    match s.to_ascii_lowercase().as_str() {
        "cesm" | "cesm-atm" => Ok(Dataset::CesmAtm),
        "hacc" => Ok(Dataset::Hacc),
        "nyx" => Ok(Dataset::Nyx),
        "isabel" => Ok(Dataset::Isabel),
        _ => Err(CliError::Usage(format!("unknown dataset `{s}`"))),
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, CliError> {
    s.parse().map_err(|_| CliError::Usage(format!("cannot parse {what} `{s}`")))
}

/// Parse a flag that must be a finite, strictly positive number
/// (`--eb`, `--gb`): zeros, negatives, `inf` and `nan` are usage errors,
/// not values to hand to the codecs.
fn parse_pos_f64(s: &str, what: &str) -> Result<f64, CliError> {
    let v: f64 = parse_num(s, what)?;
    if !v.is_finite() || v <= 0.0 {
        return Err(CliError::Usage(format!("{what} must be finite and positive, got `{s}`")));
    }
    Ok(v)
}

/// Parse an integer flag that must be at least 1 (`--scale`, `--reps`).
fn parse_nonzero<T>(s: &str, what: &str) -> Result<T, CliError>
where
    T: std::str::FromStr + PartialEq + From<u8>,
{
    let v: T = parse_num(s, what)?;
    if v == T::from(0u8) {
        return Err(CliError::Usage(format!("{what} must be at least 1, got `{s}`")));
    }
    Ok(v)
}

/// Hard ceiling on `--threads` (0 still means "all available cores").
const MAX_THREADS: usize = 4096;

fn parse_threads(s: &str) -> Result<usize, CliError> {
    let v: usize = parse_num(s, "threads")?;
    if v > MAX_THREADS {
        return Err(CliError::Usage(format!("threads must be at most {MAX_THREADS}, got `{s}`")));
    }
    Ok(v)
}

/// A parsed command plus session-level options that apply to every
/// subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    /// The subcommand to execute.
    pub command: Command,
    /// Write a JSON metrics report (spans, counters, wall time) to this
    /// path after the command finishes.
    pub metrics: Option<PathBuf>,
}

/// Parse an argument vector (without the program name), extracting
/// session-level flags like `--metrics out.json` that may appear anywhere
/// on the command line.
pub fn parse_invocation(args: &[String]) -> Result<Invocation, CliError> {
    let mut rest = Vec::with_capacity(args.len());
    let mut metrics = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--metrics" {
            let v = args
                .get(i + 1)
                .ok_or_else(|| CliError::Usage("flag `--metrics` needs a value".to_string()))?;
            metrics = Some(PathBuf::from(v));
            i += 2;
        } else {
            rest.push(args[i].clone());
            i += 1;
        }
    }
    Ok(Invocation { command: parse(&rest)?, metrics })
}

/// Parse an argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, CliError> {
    let (cmd, rest) = args.split_first().ok_or_else(|| CliError::Usage(usage().to_string()))?;
    let m = parse_flags(rest)?;
    match cmd.as_str() {
        "gen" => Ok(Command::Gen {
            dataset: parse_dataset(req(&m, &["dataset", "d"])?)?,
            scale: parse_nonzero(m.get("scale").map(String::as_str).unwrap_or("4096"), "scale")?,
            seed: parse_num(m.get("seed").map(String::as_str).unwrap_or("1"), "seed")?,
            output: PathBuf::from(req(&m, &["o", "output"])?),
        }),
        "compress" => Ok(Command::Compress {
            codec: req(&m, &["codec", "c"])?.to_ascii_lowercase(),
            eb: parse_pos_f64(m.get("eb").map(String::as_str).unwrap_or("1e-3"), "error bound")?,
            rel: m.contains_key("rel"),
            pwrel: m.contains_key("pwrel"),
            threads: parse_threads(m.get("threads").map(String::as_str).unwrap_or("0"))?,
            input: PathBuf::from(req(&m, &["i", "input"])?),
            output: PathBuf::from(req(&m, &["o", "output"])?),
        }),
        "decompress" => Ok(Command::Decompress {
            input: PathBuf::from(req(&m, &["i", "input"])?),
            output: PathBuf::from(req(&m, &["o", "output"])?),
        }),
        "info" => Ok(Command::Info { input: PathBuf::from(req(&m, &["i", "input"])?) }),
        "codecs" => Ok(Command::Codecs),
        "quality" => Ok(Command::Quality {
            a: PathBuf::from(req(&m, &["a"])?),
            b: PathBuf::from(req(&m, &["b"])?),
        }),
        "sweep" | "experiment" => Ok(Command::Sweep {
            scale: parse_nonzero(m.get("scale").map(String::as_str).unwrap_or("256"), "scale")?,
            reps: parse_nonzero(m.get("reps").map(String::as_str).unwrap_or("10"), "reps")?,
            policy: parse_policy(&m)?,
            output: PathBuf::from(req(&m, &["o", "output"])?),
        }),
        "tables" => Ok(Command::Tables { input: PathBuf::from(req(&m, &["i", "input"])?) }),
        "tune" => Ok(Command::Tune { input: PathBuf::from(req(&m, &["i", "input"])?) }),
        "dump" => Ok(Command::Dump {
            gb: parse_pos_f64(m.get("gb").map(String::as_str).unwrap_or("512"), "gb")?,
        }),
        "pipeline" => Ok(Command::Pipeline {
            codec: req(&m, &["codec", "c"])?.to_ascii_lowercase(),
            eb: parse_pos_f64(m.get("eb").map(String::as_str).unwrap_or("1e-3"), "error bound")?,
            threads: parse_threads(m.get("threads").map(String::as_str).unwrap_or("0"))?,
            queue_depth: parse_nonzero(
                m.get("queue-depth").map(String::as_str).unwrap_or("4"),
                "queue-depth",
            )?,
            writers: parse_nonzero(m.get("writers").map(String::as_str).unwrap_or("1"), "writers")?,
            chunk_elems: parse_nonzero(
                m.get("chunk-elems").map(String::as_str).unwrap_or("262144"),
                "chunk-elems",
            )?,
            wire: m.contains_key("wire"),
            policy: parse_policy(&m)?,
            input: PathBuf::from(req(&m, &["i", "input"])?),
            output: PathBuf::from(req(&m, &["o", "output"])?),
        }),
        "restart" => Ok(Command::Restart {
            queue_depth: parse_nonzero(
                m.get("queue-depth").map(String::as_str).unwrap_or("4"),
                "queue-depth",
            )?,
            readers: parse_nonzero(m.get("readers").map(String::as_str).unwrap_or("1"), "readers")?,
            workers: parse_threads(m.get("workers").map(String::as_str).unwrap_or("0"))?,
            streamed: m.contains_key("streamed"),
            policy: parse_policy(&m)?,
            input: PathBuf::from(req(&m, &["i", "input"])?),
            output: PathBuf::from(req(&m, &["o", "output"])?),
        }),
        "serve" => {
            let socket = m.get("socket").map(PathBuf::from);
            let tcp = m.get("tcp").cloned();
            if socket.is_some() == tcp.is_some() {
                return Err(CliError::Usage(
                    "serve needs exactly one of --socket PATH or --tcp HOST:PORT".to_string(),
                ));
            }
            Ok(Command::Serve {
                socket,
                tcp,
                workers: parse_nonzero(
                    m.get("workers").map(String::as_str).unwrap_or("2"),
                    "workers",
                )?,
                queue_depth: parse_nonzero(
                    m.get("queue-depth").map(String::as_str).unwrap_or("8"),
                    "queue-depth",
                )?,
                codec: m
                    .get("codec")
                    .cloned()
                    .unwrap_or_else(|| "sz".to_string())
                    .to_ascii_lowercase(),
                eb: parse_pos_f64(
                    m.get("eb").map(String::as_str).unwrap_or("1e-3"),
                    "error bound",
                )?,
                policy: parse_policy(&m)?,
                timeout_ms: parse_nonzero(
                    m.get("timeout-ms").map(String::as_str).unwrap_or("30000"),
                    "timeout-ms",
                )?,
                drive: parse_num(m.get("drive").map(String::as_str).unwrap_or("0"), "drive")?,
                clients: parse_nonzero(
                    m.get("clients").map(String::as_str).unwrap_or("4"),
                    "clients",
                )?,
                chunk_elems: parse_nonzero(
                    m.get("chunk-elems").map(String::as_str).unwrap_or("16384"),
                    "chunk-elems",
                )?,
            })
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`\n{}", usage()))),
    }
}

/// Write a field container (f32).
pub fn write_field(path: &Path, data: &[f32], dims: &[usize]) -> Result<(), CliError> {
    let mut bytes = Vec::with_capacity(data.len() * 4 + 64);
    bytes.extend_from_slice(&FIELD_MAGIC);
    bytes.push(0); // f32 tag
    bytes.push(dims.len() as u8);
    for &d in dims {
        bytes.extend_from_slice(&(d as u64).to_le_bytes());
    }
    for &v in data {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    std::fs::write(path, bytes)?;
    Ok(())
}

/// Read a field container (f32).
pub fn read_field(path: &Path) -> Result<(Vec<f32>, Vec<usize>), CliError> {
    let bytes = std::fs::read(path)?;
    if bytes.len() < 6 || bytes[..4] != FIELD_MAGIC {
        return Err(CliError::Codec(format!("{} is not a field file", path.display())));
    }
    if bytes[4] != 0 {
        return Err(CliError::Codec("only f32 field files are supported here".to_string()));
    }
    let rank = bytes[5] as usize;
    if rank == 0 || rank > 4 || bytes.len() < 6 + rank * 8 {
        return Err(CliError::Codec("corrupt field header".to_string()));
    }
    let mut dims = Vec::with_capacity(rank);
    for r in 0..rank {
        let off = 6 + r * 8;
        dims.push(u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes")) as usize);
    }
    // A forged header must not be allowed to overflow the expected-length
    // arithmetic (wrapping could make a bogus size "match" in release
    // builds, and the multiplications panic in debug builds).
    let n = dims
        .iter()
        .try_fold(1usize, |acc, &d| acc.checked_mul(d))
        .ok_or_else(|| CliError::Codec("field dims overflow".to_string()))?;
    let data_off = 6 + rank * 8;
    let expected = n
        .checked_mul(4)
        .and_then(|b| b.checked_add(data_off))
        .ok_or_else(|| CliError::Codec("field dims overflow".to_string()))?;
    if bytes.len() != expected {
        return Err(CliError::Codec("field payload length mismatch".to_string()));
    }
    let data: Vec<f32> = bytes[data_off..]
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Ok((data, dims))
}

/// The subcommand's name, as typed on the command line.
fn command_name(cmd: &Command) -> &'static str {
    match cmd {
        Command::Gen { .. } => "gen",
        Command::Compress { .. } => "compress",
        Command::Decompress { .. } => "decompress",
        Command::Info { .. } => "info",
        Command::Codecs => "codecs",
        Command::Quality { .. } => "quality",
        Command::Sweep { .. } => "sweep",
        Command::Tables { .. } => "tables",
        Command::Tune { .. } => "tune",
        Command::Dump { .. } => "dump",
        Command::Pipeline { .. } => "pipeline",
        Command::Restart { .. } => "restart",
        Command::Serve { .. } => "serve",
    }
}

/// Execute an invocation: run the command, then — when `--metrics` was
/// given — write the trace report collected during the run as JSON.
///
/// The report is written even when the command itself fails (the spans
/// and counters up to the failure are often exactly what's needed to
/// debug it), but a command error takes precedence over a report-write
/// error.
pub fn run_invocation(inv: Invocation, out: &mut dyn Write) -> Result<(), CliError> {
    let name = command_name(&inv.command);
    lcpio_trace::reset();
    let start = std::time::Instant::now();
    let result = run(inv.command, out);
    if let Some(path) = &inv.metrics {
        let report = lcpio_trace::snapshot();
        let json = format!(
            "{{\n\"command\": \"{}\",\n\"wall_s\": {:.6},\n\"trace_enabled\": {},\n\"report\": {}\n}}\n",
            name,
            start.elapsed().as_secs_f64(),
            lcpio_trace::collecting(),
            report.to_json()
        );
        let write_result = std::fs::write(path, json);
        result?;
        write_result?;
        return Ok(());
    }
    result
}

/// Execute a command, writing human-readable output to `out`.
pub fn run(cmd: Command, out: &mut dyn Write) -> Result<(), CliError> {
    match cmd {
        Command::Gen { dataset, scale, seed, output } => {
            let field = dataset.generate(scale, seed);
            let dims: Vec<usize> = field.dims().extents().to_vec();
            write_field(&output, &field.data, &dims)?;
            writeln!(
                out,
                "wrote {} ({} elements, dims {}) to {}",
                dataset.name(),
                field.data.len(),
                field.dims(),
                output.display()
            )?;
        }
        Command::Compress { codec, eb, rel, pwrel, threads, input, output } => {
            let (data, dims) = read_field(&input)?;
            let backend = registry().by_name(&codec).ok_or_else(|| {
                CliError::Usage(format!(
                    "unknown codec `{codec}`; registered codecs: {}",
                    registry().names().join(", ")
                ))
            })?;
            if rel && pwrel {
                return Err(CliError::Usage(
                    "--rel and --pwrel are mutually exclusive".to_string(),
                ));
            }
            let bound = if pwrel {
                BoundSpec::PointwiseRelative(eb)
            } else if rel {
                BoundSpec::ValueRangeRelative(eb)
            } else {
                BoundSpec::Absolute(eb)
            };
            let encoded = if threads > 1 {
                backend.compress_chunked(&data, &dims, bound, threads)
            } else {
                backend.compress(&data, &dims, bound)
            }
            .map_err(codec_error)?;
            let ratio = encoded.stats.ratio();
            std::fs::write(&output, &encoded.bytes)?;
            writeln!(
                out,
                "compressed {} -> {} ({:.2}x) with {codec}",
                input.display(),
                output.display(),
                ratio
            )?;
        }
        Command::Decompress { input, output } => {
            let bytes = std::fs::read(&input)?;
            let (data, dims) = decode_any(&bytes)?;
            write_field(&output, &data, &dims)?;
            writeln!(
                out,
                "decompressed {} -> {} ({} elements)",
                input.display(),
                output.display(),
                data.len()
            )?;
        }
        Command::Info { input } => {
            let bytes = std::fs::read(&input)?;
            writeln!(out, "{}", describe(&bytes))?;
        }
        Command::Codecs => {
            writeln!(out, "registered codecs: {}\n", registry().names().join(", "))?;
            write!(out, "{}", render_container_table())?;
        }
        Command::Quality { a, b } => {
            let (da, _) = read_field(&a)?;
            let (db, _) = read_field(&b)?;
            let m = metrics::quality(&da, &db)
                .ok_or_else(|| CliError::Codec("fields are not comparable".to_string()))?;
            writeln!(
                out,
                "max abs err {:.3e}  rmse {:.3e}  nrmse {:.3e}  psnr {:.2} dB  corr {:.6}",
                m.max_abs_error, m.rmse, m.nrmse, m.psnr_db, m.correlation
            )?;
        }
        Command::Sweep { scale, reps, policy, output } => {
            let mut cfg = ExperimentConfig::paper();
            cfg.scale = scale;
            cfg.reps = reps;
            let sweep = run_full_sweep(&cfg);
            std::fs::write(&output, sweep.to_json())?;
            writeln!(
                out,
                "swept {} compression, {} transit and {} policy records into {}",
                sweep.compression.len(),
                sweep.transit.len(),
                sweep.policy.len(),
                output.display()
            )?;
            // Highlight the requested policy's best arm per chip from the
            // adaptive axis.
            let focus: Vec<_> =
                sweep.policy.iter().filter(|r| r.policy == policy.name()).collect();
            let mut seen = Vec::new();
            for r in &focus {
                let chip = r.chip.name();
                if seen.contains(&chip) {
                    continue;
                }
                seen.push(chip);
                let best = focus
                    .iter()
                    .filter(|x| x.chip == r.chip)
                    .min_by(|a, b| a.energy_j.total_cmp(&b.energy_j))
                    .expect("non-empty by construction");
                writeln!(
                    out,
                    "  {chip}: best {} arm `{}` — {:.3} J, {:.2}x, planned in {:.4} s",
                    policy.name(),
                    best.label,
                    best.energy_j,
                    best.ratio(),
                    best.plan_s
                )?;
            }
        }
        Command::Tables { input } => {
            let sweep = load_sweep(&input)?;
            let t4 = compression_model_table(&sweep.compression);
            let t5 = transit_model_table(&sweep.transit);
            writeln!(out, "{}", render_model_table("TABLE IV — compression power models", &t4))?;
            writeln!(out, "{}", render_model_table("TABLE V — data-transit power models", &t5))?;
        }
        Command::Tune { input } => {
            let sweep = load_sweep(&input)?;
            let report = evaluate_rule(
                TuningRule::PAPER,
                &compression_power_curves(&sweep.compression),
                &compression_runtime_curves(&sweep.compression),
                &transit_power_curves(&sweep.transit),
                &transit_runtime_curves(&sweep.transit),
            );
            writeln!(out, "{}", render_tuning(&report))?;
        }
        Command::Dump { gb } => {
            let cfg = DataDumpConfig { total_bytes: gb * 1e9, ..DataDumpConfig::paper() };
            let (rows, summary) =
                run_data_dump(&cfg).map_err(|e| CliError::Codec(e.to_string()))?;
            writeln!(out, "{}", render_dump(&format!("{gb:.0} GB data dump:"), &rows))?;
            writeln!(
                out,
                "mean savings: {:.1} kJ ({:.1}%)",
                summary.mean_saved_j / 1e3,
                summary.mean_savings * 100.0
            )?;
        }
        Command::Pipeline {
            codec,
            eb,
            threads,
            queue_depth,
            writers,
            chunk_elems,
            wire,
            policy,
            input,
            output,
        } => {
            let (data, _dims) = read_field(&input)?;
            let compressor = match codec.as_str() {
                "sz" => lcpio_core::Compressor::Sz,
                "zfp" => lcpio_core::Compressor::Zfp,
                other => {
                    return Err(CliError::Usage(format!(
                        "unknown codec `{other}`; registered codecs: {}",
                        registry().names().join(", ")
                    )))
                }
            };
            let cfg = lcpio_core::pipeline::PipelineConfig {
                compressor,
                bound: BoundSpec::Absolute(eb),
                chunk_elements: chunk_elems,
                queue_depth,
                writers,
                compress_threads: threads,
                wire_format: wire,
                policy,
                ..lcpio_core::pipeline::PipelineConfig::default()
            };
            // The sink writes to `<output>.part` and renames only on
            // success, so a failed run never leaves a partial container.
            let sink = lcpio_core::pipeline::FileSink::create(&output)?;
            let outcome = stream_pipeline(&data, &cfg, sink)?;
            writeln!(
                out,
                "streamed {} -> {} with {codec}: {} chunks, {:.2}x, \
                 {} write retries, {} raw fallbacks, {:.3} s",
                input.display(),
                output.display(),
                outcome.chunks,
                outcome.ratio(),
                outcome.write_retries,
                outcome.raw_fallbacks,
                outcome.wall_s
            )?;
            if policy != PolicyKind::Fixed {
                let [raw, sz, zfp] = outcome.codec_chunks;
                writeln!(
                    out,
                    "policy {}: planned {} chunks in {:.4} s (sz {sz}, zfp {zfp}, raw {raw})",
                    policy.name(),
                    outcome.chunks,
                    outcome.plan_s
                )?;
            }
        }
        Command::Restart { queue_depth, readers, workers, streamed, policy, input, output } => {
            let cfg = lcpio_core::pipeline::RestartConfig {
                queue_depth,
                readers,
                workers,
                ..lcpio_core::pipeline::RestartConfig::default()
            };
            let (data, outcome) = if streamed {
                let mut file = std::fs::File::open(&input)
                    .map_err(|e| CliError::Codec(format!("{}: {e}", input.display())))?;
                lcpio_core::pipeline::run_restart_streamed(&mut file, &cfg)
                    .map_err(|e| CliError::Codec(e.to_string()))?
            } else {
                let source = lcpio_core::pipeline::FileSource::open(&input)
                    .map_err(|e| CliError::Codec(format!("{}: {e}", input.display())))?;
                lcpio_core::pipeline::run_restart(&source, &cfg)
                    .map_err(|e| CliError::Codec(e.to_string()))?
            };
            let n = data.len();
            write_field(&output, &data, &[n])?;
            writeln!(
                out,
                "restarted {} -> {}: {} chunks, {} elements, {:.2}x, \
                 {} read retries, {} decode retries, {:.3} s",
                input.display(),
                output.display(),
                outcome.chunks,
                outcome.elements,
                outcome.ratio(),
                outcome.read_retries,
                outcome.decode_retries,
                outcome.wall_s
            )?;
            if streamed {
                writeln!(
                    out,
                    "streamed decode peak buffering: {} bytes",
                    outcome.peak_buffered_bytes
                )?;
            }
            if policy != PolicyKind::Fixed {
                // Re-price the read-back energy of a volume this size
                // under the chosen policy: the decode phase runs the
                // planned codec at the plan's DVFS frequency.
                let rb_cfg = lcpio_core::readback::ReadbackConfig {
                    total_bytes: (outcome.elements.max(1) * 4) as f64,
                    policy,
                    ..lcpio_core::readback::ReadbackConfig::quick()
                };
                let rb = lcpio_core::readback::run_readback(&rb_cfg);
                writeln!(
                    out,
                    "modelled read-back energy under `{}` policy: \
                     {:.3} J decode + {:.3} J fetch ({:.2}x overlap speedup; \
                     fixed-tuned decode {:.3} J)",
                    policy.name(),
                    rb.policy_overlap.compression_j,
                    rb.policy_overlap.writing_j,
                    rb.policy_overlap.speedup(),
                    rb.tuned_overlap.compression_j
                )?;
            }
        }
        Command::Serve {
            socket,
            tcp,
            workers,
            queue_depth,
            codec,
            eb,
            policy,
            timeout_ms,
            drive,
            clients,
            chunk_elems,
        } => {
            let default_codec = match codec.as_str() {
                "sz" => lcpio_codec::CodecId::Sz,
                "zfp" => lcpio_codec::CodecId::Zfp,
                other => {
                    return Err(CliError::Usage(format!(
                        "unknown codec `{other}`; serve accepts sz|zfp"
                    )))
                }
            };
            let endpoint = match (&socket, &tcp) {
                (Some(p), None) => lcpio_serve::Endpoint::Unix(p.clone()),
                (None, Some(a)) => lcpio_serve::Endpoint::Tcp(a.clone()),
                _ => unreachable!("parse enforces exactly one of --socket/--tcp"),
            };
            let cfg = lcpio_serve::ServeConfig {
                workers,
                queue_depth,
                read_timeout: std::time::Duration::from_millis(timeout_ms),
                default_codec,
                default_bound: BoundSpec::Absolute(eb),
                default_policy: policy,
                ..lcpio_serve::ServeConfig::default()
            };
            let server = lcpio_serve::Server::bind(&endpoint, cfg)?;
            writeln!(
                out,
                "serving on {} with {workers} worker shard(s), queue depth {queue_depth}, \
                 default codec {codec}, policy {}",
                server.endpoint(),
                policy.name()
            )?;
            if drive > 0 {
                let wl = lcpio_serve::WorkloadConfig {
                    requests: drive,
                    clients,
                    chunk_elements: chunk_elems,
                    codec: default_codec,
                    bound: BoundSpec::Absolute(eb),
                    policy,
                    ..Default::default()
                };
                let report = lcpio_serve::drive(server.endpoint(), &wl)
                    .map_err(|e| CliError::Codec(e.to_string()))?;
                server.shutdown();
                let stats = server.wait();
                writeln!(
                    out,
                    "drove {} requests ({} ok, {} busy, {} errors) in {:.3} s: \
                     {:.1} req/s, p50 {} us, p99 {} us",
                    report.requests,
                    report.ok,
                    report.busy,
                    report.errors,
                    report.wall_s,
                    report.req_per_s,
                    report.p50_us,
                    report.p99_us
                )?;
                writeln!(
                    out,
                    "served {} compress, {} decompress, {} info; \
                     {} payload bytes in, {} out, {:.6} J modeled",
                    stats.compress,
                    stats.decompress,
                    stats.info,
                    stats.bytes_in,
                    stats.bytes_out,
                    stats.energy_uj as f64 / 1e6
                )?;
            } else {
                let stats = server.wait();
                writeln!(
                    out,
                    "drained after {} request(s): {} compress, {} decompress, {} info, \
                     {} ping; {} busy, {} errors",
                    stats.requests,
                    stats.compress,
                    stats.decompress,
                    stats.info,
                    stats.ping,
                    stats.busy_rejected,
                    stats.errors
                )?;
            }
        }
    }
    Ok(())
}

/// Run the streaming pipeline into a [`lcpio_core::pipeline::FileSink`],
/// committing the container only on success.
fn stream_pipeline(
    data: &[f32],
    cfg: &lcpio_core::pipeline::PipelineConfig,
    mut sink: lcpio_core::pipeline::FileSink,
) -> Result<lcpio_core::pipeline::StreamOutcome, CliError> {
    let outcome = lcpio_core::pipeline::run_streaming(data, cfg, &mut sink)
        .map_err(|e| CliError::Codec(e.to_string()))?;
    sink.commit()?;
    Ok(outcome)
}

fn load_sweep(path: &Path) -> Result<SweepResult, CliError> {
    let json = std::fs::read_to_string(path)?;
    serde_json::from_str(&json).map_err(|e| CliError::Codec(format!("bad sweep file: {e}")))
}

/// Map a codec-layer failure onto the CLI error taxonomy: a bound the
/// backend cannot honor is the user's mistake (usage), everything else is
/// a codec failure.
fn codec_error(e: CodecError) -> CliError {
    match e {
        CodecError::UnsupportedBound { .. } => CliError::Usage(e.to_string()),
        other => CliError::Codec(other.to_string()),
    }
}

/// The registry's known magics, comma-separated, for error messages.
fn known_containers() -> String {
    registry().list().iter().map(|(_, i)| i.magic_str()).collect::<Vec<_>>().join(", ")
}

/// True if `bytes` are a streaming pipeline container in either its
/// legacy `LCS1` form or wrapped in an `LCW1` envelope whose container
/// id is `LCS1`.
fn is_stream_container(bytes: &[u8]) -> bool {
    if bytes.len() >= 4 && bytes[..4] == lcpio_core::pipeline::STREAM_MAGIC {
        return true;
    }
    lcpio_wire::Envelope::sniff(bytes)
        && lcpio_wire::Envelope::parse(bytes)
            .map(|env| env.container == lcpio_core::pipeline::STREAM_MAGIC)
            .unwrap_or(false)
}

/// Decode a compressed buffer whose codec is identified by its magic.
///
/// `LCS1` streaming containers (legacy or `LCW1`-wrapped) are decoded by
/// the pipeline module (their frames, in turn, go through the registry);
/// everything else resolves directly through the registry's magic
/// sniffing, which unwraps codec-container `LCW1` envelopes itself.
fn decode_any(bytes: &[u8]) -> Result<(Vec<f32>, Vec<usize>), CliError> {
    if is_stream_container(bytes) {
        let data = lcpio_core::pipeline::decode_stream(bytes)
            .map_err(|e| CliError::Codec(e.to_string()))?;
        let n = data.len();
        return Ok((data, vec![n]));
    }
    registry().decompress_auto(bytes, 0).map_err(|e| match e {
        CodecError::UnknownMagic(m) => {
            let ascii: String =
                m.iter().map(|&b| if b.is_ascii_graphic() { b as char } else { '.' }).collect();
            CliError::Codec(format!(
                "unrecognized stream: first 4 bytes are {m:02x?} (`{ascii}`); \
                 known containers: {}",
                known_containers()
            ))
        }
        CodecError::TooShort => CliError::Codec(format!(
            "stream too short ({} bytes, need at least a 4-byte magic); known containers: {}",
            bytes.len(),
            known_containers()
        )),
        other => CliError::Codec(other.to_string()),
    })
}

/// One-line description of a stream or field file.
fn describe(bytes: &[u8]) -> String {
    if bytes.len() < 4 {
        return "unrecognized (too short)".to_string();
    }
    let kind = if bytes[..4] == FIELD_MAGIC {
        "raw field container"
    } else if bytes[..4] == lcpio_core::pipeline::STREAM_MAGIC {
        "streaming pipeline container (LCS1)"
    } else if is_stream_container(bytes) {
        "LCW1 wire envelope (LCS1 streaming container)"
    } else {
        // Codec containers, including their `LCW1`-wrapped form: the
        // registry resolves a wire envelope to its inner codec.
        registry().describe(bytes).unwrap_or("unrecognized")
    };
    format!("{kind}, {} bytes", bytes.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|w| w.to_string()).collect()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("lcpio-cli-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn parse_gen() {
        let c = parse(&argv("gen --dataset nyx --scale 8192 --seed 7 -o out.lcpf")).expect("parse");
        assert_eq!(
            c,
            Command::Gen {
                dataset: Dataset::Nyx,
                scale: 8192,
                seed: 7,
                output: PathBuf::from("out.lcpf")
            }
        );
    }

    #[test]
    fn parse_compress_with_defaults() {
        let c = parse(&argv("compress --codec sz -i a -o b")).expect("parse");
        match c {
            Command::Compress { codec, eb, rel, pwrel, threads, .. } => {
                assert_eq!(codec, "sz");
                assert_eq!(eb, 1e-3);
                assert!(!rel && !pwrel);
                assert_eq!(threads, 0);
            }
            other => panic!("wrong command {other:?}"),
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("gen --dataset marsupial -o x")).is_err());
        assert!(parse(&argv("gen --dataset nyx")).is_err(), "missing -o");
        assert!(parse(&argv("compress --codec sz --eb nope -i a -o b")).is_err());
        assert!(parse(&[]).is_err());
    }

    #[test]
    fn parse_serve_defaults_and_endpoint_exclusivity() {
        let c = parse(&argv("serve --socket /tmp/s.sock")).expect("parse");
        match c {
            Command::Serve {
                socket, tcp, workers, queue_depth, codec, eb, drive, clients, chunk_elems, ..
            } => {
                assert_eq!(socket, Some(PathBuf::from("/tmp/s.sock")));
                assert_eq!(tcp, None);
                assert_eq!(workers, 2);
                assert_eq!(queue_depth, 8);
                assert_eq!(codec, "sz");
                assert_eq!(eb, 1e-3);
                assert_eq!(drive, 0);
                assert_eq!(clients, 4);
                assert_eq!(chunk_elems, 16384);
            }
            other => panic!("wrong command {other:?}"),
        }
        // Exactly one endpoint: neither and both are usage errors.
        assert!(parse(&argv("serve")).is_err());
        assert!(parse(&argv("serve --socket a --tcp 127.0.0.1:0")).is_err());
        assert!(parse(&argv("serve --tcp 127.0.0.1:0 --workers 0")).is_err());
    }

    #[test]
    fn run_serve_self_driven() {
        let cmd = parse(&argv(
            "serve --tcp 127.0.0.1:0 --workers 2 --drive 10 --clients 2 --chunk-elems 2048",
        ))
        .expect("parse");
        let mut out = Vec::new();
        run(cmd, &mut out).expect("run");
        let transcript = String::from_utf8(out).expect("utf8");
        assert!(transcript.contains("serving on tcp:127.0.0.1:"), "{transcript}");
        assert!(transcript.contains("req/s"), "{transcript}");
        assert!(transcript.contains("p99"), "{transcript}");
        assert!(transcript.contains("10 requests (10 ok, 0 busy, 0 errors)"), "{transcript}");
    }

    #[test]
    fn field_file_roundtrip() {
        let path = tmp("roundtrip.lcpf");
        let data: Vec<f32> = (0..60).map(|i| i as f32 * 0.5).collect();
        write_field(&path, &data, &[3, 4, 5]).expect("write");
        let (back, dims) = read_field(&path).expect("read");
        assert_eq!(back, data);
        assert_eq!(dims, vec![3, 4, 5]);
    }

    #[test]
    fn read_field_rejects_corruption() {
        let path = tmp("corrupt.lcpf");
        std::fs::write(&path, b"not a field").expect("write");
        assert!(read_field(&path).is_err());
    }

    #[test]
    fn read_field_rejects_forged_oversized_dims() {
        // A header whose dims multiply past usize::MAX (or whose byte count
        // does) must be rejected with an error — not a debug-build panic or
        // a release-build wraparound that could "match" the payload length.
        for dims in [
            vec![u64::MAX, u64::MAX],
            vec![u64::MAX / 2, 3],
            vec![(usize::MAX / 4) as u64 + 1], // n*4 overflows, n itself fits
        ] {
            let path = tmp("forged.lcpf");
            let mut bytes = Vec::new();
            bytes.extend_from_slice(&FIELD_MAGIC);
            bytes.push(0); // f32 tag
            bytes.push(dims.len() as u8);
            for &d in &dims {
                bytes.extend_from_slice(&d.to_le_bytes());
            }
            bytes.extend_from_slice(&[0u8; 16]); // token payload
            std::fs::write(&path, bytes).expect("write");
            let err = read_field(&path).expect_err("forged dims must be rejected");
            assert!(
                matches!(err, CliError::Codec(_)),
                "dims {dims:?}: wrong error {err:?}"
            );
        }
    }

    #[test]
    fn parse_rejects_degenerate_numbers() {
        // Zero / negative / non-finite numeric flags are usage errors at
        // parse time, before any work starts.
        for cmd in [
            "compress --codec sz --eb 0 -i a -o b",
            "compress --codec sz --eb -1e-3 -i a -o b",
            "compress --codec sz --eb inf -i a -o b",
            "compress --codec sz --eb nan -i a -o b",
            "compress --codec sz --threads 1000000 -i a -o b",
            "gen --dataset nyx --scale 0 -o x",
            "sweep --scale 0 -o x",
            "sweep --reps 0 -o x",
            "dump --gb 0",
            "dump --gb -512",
            "dump --gb inf",
        ] {
            let err = parse(&argv(cmd)).expect_err(cmd);
            assert!(matches!(err, CliError::Usage(_)), "{cmd}: wrong error {err:?}");
        }
        // The boundary values stay accepted.
        assert!(parse(&argv("compress --codec sz --eb 1e-12 --threads 0 -i a -o b")).is_ok());
        assert!(parse(&argv("gen --dataset nyx --scale 1 -o x")).is_ok());
        assert!(parse(&argv("sweep --reps 1 -o x")).is_ok());
    }

    #[test]
    fn parse_invocation_extracts_metrics_anywhere() {
        let inv = parse_invocation(&argv("--metrics m.json dump --gb 64")).expect("parse");
        assert_eq!(inv.metrics, Some(PathBuf::from("m.json")));
        assert_eq!(inv.command, Command::Dump { gb: 64.0 });
        let inv = parse_invocation(&argv("dump --gb 64 --metrics m.json")).expect("parse");
        assert_eq!(inv.metrics, Some(PathBuf::from("m.json")));
        let inv = parse_invocation(&argv("dump --gb 64")).expect("parse");
        assert_eq!(inv.metrics, None);
        assert!(parse_invocation(&argv("dump --metrics")).is_err());
    }

    #[test]
    fn metrics_report_is_written_as_json() {
        let field = tmp("metrics.lcpf");
        let comp = tmp("metrics.sz");
        let report = tmp("metrics.json");
        let mut out = Vec::new();
        run_invocation(
            parse_invocation(&argv(&format!(
                "gen --dataset nyx --scale 65536 --seed 9 -o {}",
                field.display()
            )))
            .expect("parse"),
            &mut out,
        )
        .expect("gen");
        run_invocation(
            parse_invocation(&argv(&format!(
                "compress --codec sz --eb 1e-2 --threads 2 -i {} -o {} --metrics {}",
                field.display(),
                comp.display(),
                report.display()
            )))
            .expect("parse"),
            &mut out,
        )
        .expect("compress");
        let json = std::fs::read_to_string(&report).expect("metrics file written");
        assert!(json.contains("\"command\": \"compress\""), "{json}");
        assert!(json.contains("\"wall_s\""), "{json}");
        assert!(json.contains("\"spans\""), "{json}");
        assert!(json.contains("\"counters\""), "{json}");
        // Span/counter contents exist only when the trace feature is on
        // (the --no-default-features CI leg writes an empty report).
        if cfg!(feature = "trace") {
            assert!(json.contains("\"trace_enabled\": true"), "{json}");
            assert!(json.contains("sz.predict_quantize"), "{json}");
            assert!(json.contains("sz.chunk.compress"), "{json}");
            assert!(json.contains("\"sz.bytes_in\""), "{json}");
        } else {
            assert!(json.contains("\"trace_enabled\": false"), "{json}");
        }
    }

    #[test]
    fn end_to_end_gen_compress_decompress_quality() {
        let field = tmp("e2e.lcpf");
        let comp = tmp("e2e.sz");
        let back = tmp("e2e-back.lcpf");
        let mut out = Vec::new();
        run(
            parse(&argv(&format!(
                "gen --dataset nyx --scale 65536 --seed 3 -o {}",
                field.display()
            )))
            .expect("parse"),
            &mut out,
        )
        .expect("gen");
        run(
            parse(&argv(&format!(
                "compress --codec sz --eb 1e-2 -i {} -o {}",
                field.display(),
                comp.display()
            )))
            .expect("parse"),
            &mut out,
        )
        .expect("compress");
        run(
            parse(&argv(&format!(
                "decompress -i {} -o {}",
                comp.display(),
                back.display()
            )))
            .expect("parse"),
            &mut out,
        )
        .expect("decompress");
        run(
            parse(&argv(&format!("quality -a {} -b {}", field.display(), back.display())))
                .expect("parse"),
            &mut out,
        )
        .expect("quality");
        let text = String::from_utf8(out).expect("utf8 output");
        assert!(text.contains("compressed"), "{text}");
        assert!(text.contains("max abs err"), "{text}");
        // The reported max error must respect the bound.
        let (orig, _) = read_field(&field).expect("read");
        let (rec, _) = read_field(&back).expect("read");
        let err = orig
            .iter()
            .zip(&rec)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(err <= 1e-2);
    }

    #[test]
    fn zfp_and_pwrel_streams_auto_detect() {
        let field = tmp("auto.lcpf");
        let mut out = Vec::new();
        run(
            parse(&argv(&format!(
                "gen --dataset nyx --scale 65536 --seed 5 -o {}",
                field.display()
            )))
            .expect("parse"),
            &mut out,
        )
        .expect("gen");
        for (codec, extra, name) in [
            ("zfp", "", "auto.zfp"),
            ("zfp", "--threads 3", "auto.zfpp"),
            ("sz", "--threads 3", "auto.szp"),
            ("sz", "--pwrel", "auto.szpr"),
        ] {
            let comp = tmp(name);
            let back = tmp(&format!("{name}.back"));
            run(
                parse(&argv(&format!(
                    "compress --codec {codec} --eb 1e-2 {extra} -i {} -o {}",
                    field.display(),
                    comp.display()
                )))
                .expect("parse"),
                &mut out,
            )
            .expect("compress");
            run(
                parse(&argv(&format!(
                    "decompress -i {} -o {}",
                    comp.display(),
                    back.display()
                )))
                .expect("parse"),
                &mut out,
            )
            .expect("decompress");
            let mut info_out = Vec::new();
            run(
                parse(&argv(&format!("info -i {}", comp.display()))).expect("parse"),
                &mut info_out,
            )
            .expect("info");
            let info_text = String::from_utf8(info_out).expect("utf8");
            assert!(info_text.contains("stream"), "{info_text}");
        }
    }

    #[test]
    fn sweep_tables_tune_pipeline_via_files() {
        let sweep_path = tmp("sweep.json");
        let mut out = Vec::new();
        run(
            parse(&argv(&format!(
                "sweep --scale 16384 --reps 2 -o {}",
                sweep_path.display()
            )))
            .expect("parse"),
            &mut out,
        )
        .expect("sweep");
        run(
            parse(&argv(&format!("tables -i {}", sweep_path.display()))).expect("parse"),
            &mut out,
        )
        .expect("tables");
        run(
            parse(&argv(&format!("tune -i {}", sweep_path.display()))).expect("parse"),
            &mut out,
        )
        .expect("tune");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("TABLE IV"), "{text}");
        assert!(text.contains("Broadwell"), "{text}");
        assert!(text.contains("Eqn-3"), "{text}");
    }

    #[test]
    fn parse_pipeline_with_defaults_and_knobs() {
        let c = parse(&argv("pipeline --codec sz -i a -o b")).expect("parse");
        match c {
            Command::Pipeline { codec, eb, threads, queue_depth, writers, chunk_elems, wire, .. } => {
                assert_eq!(codec, "sz");
                assert_eq!(eb, 1e-3);
                assert_eq!(threads, 0);
                assert_eq!(queue_depth, 4);
                assert_eq!(writers, 1);
                assert_eq!(chunk_elems, 262144);
                assert!(!wire, "legacy LCS1 output is the default");
            }
            other => panic!("wrong command {other:?}"),
        }
        let c = parse(&argv(
            "pipeline --codec zfp --eb 1e-2 --queue-depth 2 --writers 3 --chunk-elems 4096 \
             --wire -i a -o b",
        ))
        .expect("parse");
        match c {
            Command::Pipeline { codec, queue_depth, writers, chunk_elems, wire, .. } => {
                assert_eq!(codec, "zfp");
                assert_eq!(queue_depth, 2);
                assert_eq!(writers, 3);
                assert_eq!(chunk_elems, 4096);
                assert!(wire, "--wire is a boolean flag");
            }
            other => panic!("wrong command {other:?}"),
        }
        // Degenerate knobs are usage errors at parse time.
        for cmd in [
            "pipeline --codec sz --queue-depth 0 -i a -o b",
            "pipeline --codec sz --writers 0 -i a -o b",
            "pipeline --codec sz --chunk-elems 0 -i a -o b",
            "pipeline --codec sz --eb 0 -i a -o b",
        ] {
            assert!(matches!(parse(&argv(cmd)), Err(CliError::Usage(_))), "{cmd}");
        }
    }

    #[test]
    fn pipeline_end_to_end_stream_info_decompress() {
        let field = tmp("pipe.lcpf");
        let stream = tmp("pipe.lcs");
        let back = tmp("pipe-back.lcpf");
        let mut out = Vec::new();
        run(
            parse(&argv(&format!(
                "gen --dataset nyx --scale 65536 --seed 11 -o {}",
                field.display()
            )))
            .expect("parse"),
            &mut out,
        )
        .expect("gen");
        run(
            parse(&argv(&format!(
                "pipeline --codec sz --eb 1e-2 --queue-depth 2 --chunk-elems 2048 -i {} -o {}",
                field.display(),
                stream.display()
            )))
            .expect("parse"),
            &mut out,
        )
        .expect("pipeline");
        // No `.part` remnant after a successful commit.
        assert!(!Path::new(&format!("{}.part", stream.display())).exists());
        let mut info_out = Vec::new();
        run(parse(&argv(&format!("info -i {}", stream.display()))).expect("parse"), &mut info_out)
            .expect("info");
        let info_text = String::from_utf8(info_out).expect("utf8");
        assert!(info_text.contains("streaming pipeline container"), "{info_text}");
        run(
            parse(&argv(&format!(
                "decompress -i {} -o {}",
                stream.display(),
                back.display()
            )))
            .expect("parse"),
            &mut out,
        )
        .expect("decompress");
        // Error bound holds across the streamed chunks.
        let (orig, _) = read_field(&field).expect("read");
        let (rec, _) = read_field(&back).expect("read");
        assert_eq!(orig.len(), rec.len());
        let err = orig.iter().zip(&rec).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
        assert!(err <= 1e-2 * 1.001, "max err {err}");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("streamed"), "{text}");
        assert!(text.contains("chunks"), "{text}");
    }

    #[test]
    fn parse_restart_with_defaults_and_knobs() {
        let c = parse(&argv("restart -i a -o b")).expect("parse");
        assert_eq!(
            c,
            Command::Restart {
                queue_depth: 4,
                readers: 1,
                workers: 0,
                streamed: false,
                policy: PolicyKind::from_env(),
                input: PathBuf::from("a"),
                output: PathBuf::from("b"),
            }
        );
        let c =
            parse(&argv("restart --queue-depth 2 --readers 2 --workers 3 --streamed -i a -o b"))
                .expect("parse");
        match c {
            Command::Restart { queue_depth, readers, workers, streamed, .. } => {
                assert_eq!((queue_depth, readers, workers), (2, 2, 3));
                assert!(streamed, "--streamed is a boolean flag");
            }
            other => panic!("wrong command {other:?}"),
        }
        for cmd in [
            "restart --queue-depth 0 -i a -o b",
            "restart --readers 0 -i a -o b",
            "restart --workers 1000000 -i a -o b",
            "restart -i a",
        ] {
            assert!(matches!(parse(&argv(cmd)), Err(CliError::Usage(_))), "{cmd}");
        }
    }

    #[test]
    fn restart_end_to_end_matches_sequential_decompress() {
        let field = tmp("restart.lcpf");
        let stream = tmp("restart.lcs");
        let seq_back = tmp("restart-seq.lcpf");
        let pipe_back = tmp("restart-pipe.lcpf");
        let mut out = Vec::new();
        run(
            parse(&argv(&format!(
                "gen --dataset nyx --scale 65536 --seed 13 -o {}",
                field.display()
            )))
            .expect("parse"),
            &mut out,
        )
        .expect("gen");
        run(
            parse(&argv(&format!(
                "pipeline --codec sz --eb 1e-2 --chunk-elems 2048 -i {} -o {}",
                field.display(),
                stream.display()
            )))
            .expect("parse"),
            &mut out,
        )
        .expect("pipeline");
        run(
            parse(&argv(&format!(
                "decompress -i {} -o {}",
                stream.display(),
                seq_back.display()
            )))
            .expect("parse"),
            &mut out,
        )
        .expect("decompress");
        run(
            parse(&argv(&format!(
                "restart --queue-depth 2 --workers 2 -i {} -o {}",
                stream.display(),
                pipe_back.display()
            )))
            .expect("parse"),
            &mut out,
        )
        .expect("restart");
        // The overlapped restart reconstructs bit-identically to the
        // sequential decode of the same stream.
        let (seq, _) = read_field(&seq_back).expect("read");
        let (pipe, _) = read_field(&pipe_back).expect("read");
        assert_eq!(seq.len(), pipe.len());
        for (a, b) in seq.iter().zip(&pipe) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("restarted"), "{text}");
    }

    #[test]
    fn wire_pipeline_streamed_restart_round_trip() {
        // `--wire` emits an LCW1 envelope; info/decompress/restart (both
        // positioned and `--streamed`) must all accept it and agree with
        // the legacy-format decode of the same data.
        let field = tmp("wire.lcpf");
        let legacy = tmp("wire-legacy.lcs");
        let wired = tmp("wire.lcw");
        let legacy_back = tmp("wire-legacy-back.lcpf");
        let wired_back = tmp("wire-back.lcpf");
        let streamed_back = tmp("wire-streamed-back.lcpf");
        let mut out = Vec::new();
        run(
            parse(&argv(&format!(
                "gen --dataset nyx --scale 65536 --seed 17 -o {}",
                field.display()
            )))
            .expect("parse"),
            &mut out,
        )
        .expect("gen");
        for (flags, path) in [("", &legacy), ("--wire ", &wired)] {
            run(
                parse(&argv(&format!(
                    "pipeline --codec sz --eb 1e-2 --chunk-elems 2048 {flags}-i {} -o {}",
                    field.display(),
                    path.display()
                )))
                .expect("parse"),
                &mut out,
            )
            .expect("pipeline");
        }
        let wired_bytes = std::fs::read(&wired).expect("read wire stream");
        assert_eq!(&wired_bytes[..4], b"LCW1");
        let mut info_out = Vec::new();
        run(parse(&argv(&format!("info -i {}", wired.display()))).expect("parse"), &mut info_out)
            .expect("info");
        let info_text = String::from_utf8(info_out).expect("utf8");
        assert!(info_text.contains("LCW1 wire envelope (LCS1 streaming container)"), "{info_text}");
        run(
            parse(&argv(&format!(
                "decompress -i {} -o {}",
                legacy.display(),
                legacy_back.display()
            )))
            .expect("parse"),
            &mut out,
        )
        .expect("decompress legacy");
        run(
            parse(&argv(&format!(
                "restart --queue-depth 2 --workers 2 -i {} -o {}",
                wired.display(),
                wired_back.display()
            )))
            .expect("parse"),
            &mut out,
        )
        .expect("restart wire");
        run(
            parse(&argv(&format!(
                "restart --streamed --queue-depth 2 --workers 2 -i {} -o {}",
                wired.display(),
                streamed_back.display()
            )))
            .expect("parse"),
            &mut out,
        )
        .expect("streamed restart wire");
        let (legacy_vals, _) = read_field(&legacy_back).expect("read");
        let (wired_vals, _) = read_field(&wired_back).expect("read");
        let (streamed_vals, _) = read_field(&streamed_back).expect("read");
        assert_eq!(legacy_vals.len(), wired_vals.len());
        assert_eq!(legacy_vals.len(), streamed_vals.len());
        for ((a, b), c) in legacy_vals.iter().zip(&wired_vals).zip(&streamed_vals) {
            assert_eq!(a.to_bits(), b.to_bits());
            assert_eq!(a.to_bits(), c.to_bits());
        }
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("peak buffering"), "{text}");
    }

    #[test]
    fn parse_policy_flag_and_experiment_alias() {
        // Explicit --policy wins on all three subcommands.
        match parse(&argv("pipeline --codec sz --policy adaptive -i a -o b")).expect("parse") {
            Command::Pipeline { policy, .. } => assert_eq!(policy, PolicyKind::Adaptive),
            other => panic!("wrong command {other:?}"),
        }
        match parse(&argv("restart --policy heuristic -i a -o b")).expect("parse") {
            Command::Restart { policy, .. } => assert_eq!(policy, PolicyKind::Heuristic),
            other => panic!("wrong command {other:?}"),
        }
        match parse(&argv("sweep --policy fixed -o s.json")).expect("parse") {
            Command::Sweep { policy, .. } => assert_eq!(policy, PolicyKind::Fixed),
            other => panic!("wrong command {other:?}"),
        }
        // `experiment` is an alias for `sweep`.
        assert_eq!(
            parse(&argv("experiment --scale 64 --policy adaptive -o s.json")).expect("parse"),
            parse(&argv("sweep --scale 64 --policy adaptive -o s.json")).expect("parse"),
        );
        // Absent flag defers to the environment (LCPIO_POLICY).
        match parse(&argv("pipeline --codec sz -i a -o b")).expect("parse") {
            Command::Pipeline { policy, .. } => assert_eq!(policy, PolicyKind::from_env()),
            other => panic!("wrong command {other:?}"),
        }
        // Garbage is a usage error.
        assert!(matches!(
            parse(&argv("pipeline --codec sz --policy greedy -i a -o b")),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn adaptive_pipeline_restart_round_trip_reports_policy() {
        // An adaptive wire pipeline mixes codecs per chunk; restart must
        // reconstruct it and report the re-priced read-back energy.
        let field = tmp("policy.lcpf");
        let stream = tmp("policy.lcw");
        let back = tmp("policy-back.lcpf");
        let mut out = Vec::new();
        run(
            parse(&argv(&format!(
                "gen --dataset cesm --scale 16384 --seed 19 -o {}",
                field.display()
            )))
            .expect("parse"),
            &mut out,
        )
        .expect("gen");
        run(
            parse(&argv(&format!(
                "pipeline --codec sz --eb 1e-3 --chunk-elems 4096 --wire --policy adaptive \
                 -i {} -o {}",
                field.display(),
                stream.display()
            )))
            .expect("parse"),
            &mut out,
        )
        .expect("pipeline");
        run(
            parse(&argv(&format!(
                "restart --queue-depth 2 --workers 2 --policy adaptive -i {} -o {}",
                stream.display(),
                back.display()
            )))
            .expect("parse"),
            &mut out,
        )
        .expect("restart");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("policy adaptive: planned"), "{text}");
        assert!(text.contains("modelled read-back energy under `adaptive`"), "{text}");
        // Bound holds through the mixed-codec container.
        let (orig, _) = read_field(&field).expect("read");
        let (rec, _) = read_field(&back).expect("read");
        assert_eq!(orig.len(), rec.len());
        let err = orig.iter().zip(&rec).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max);
        assert!(err <= 1e-3 * 1.001, "max err {err}");
    }

    #[test]
    fn describe_recognizes_magics() {
        assert!(describe(b"SZL1xxxx").contains("SZ compressed"));
        assert!(describe(b"SZLPxxxx").contains("SZ chunked"));
        assert!(describe(b"ZFLPxxxx").contains("chunked"));
        assert!(describe(b"LCPFxxxx").contains("field"));
        assert!(describe(b"LCS1xxxx").contains("streaming pipeline"));
        assert!(describe(b"??").contains("unrecognized"));
        assert!(describe(b"NOPExxxx").contains("unrecognized"));
    }

    #[test]
    fn unknown_codec_lists_registered_names() {
        let field = tmp("unknown-codec.lcpf");
        write_field(&field, &[1.0; 16], &[16]).expect("write");
        let cmd = parse(&argv(&format!(
            "compress --codec lz4 --eb 1e-2 -i {} -o /dev/null",
            field.display()
        )))
        .expect("parse");
        let mut out = Vec::new();
        let err = run(cmd, &mut out).expect_err("lz4 is not registered");
        let msg = err.to_string();
        assert!(msg.contains("unknown codec `lz4`"), "{msg}");
        assert!(msg.contains("sz") && msg.contains("zfp"), "{msg}");
    }

    #[test]
    fn decompress_unknown_magic_lists_known_containers() {
        // Satellite: the unknown-magic error must name every registered
        // container and echo the first 4 bytes seen.
        let bogus = tmp("bogus.bin");
        std::fs::write(&bogus, b"NOPE then some payload").expect("write");
        let cmd = parse(&argv(&format!(
            "decompress -i {} -o /dev/null",
            bogus.display()
        )))
        .expect("parse");
        let mut out = Vec::new();
        let msg = run(cmd, &mut out).expect_err("bogus magic").to_string();
        for magic in ["SZL1", "SZLP", "SZPR", "ZFL1", "ZFLP"] {
            assert!(msg.contains(magic), "{msg}");
        }
        assert!(msg.contains("NOPE"), "first 4 bytes missing: {msg}");

        let short = tmp("short.bin");
        std::fs::write(&short, b"SZ").expect("write");
        let cmd = parse(&argv(&format!("decompress -i {} -o /dev/null", short.display())))
            .expect("parse");
        let msg = run(cmd, &mut out).expect_err("short stream").to_string();
        assert!(msg.contains("too short"), "{msg}");
        assert!(msg.contains("SZL1"), "{msg}");
    }

    #[test]
    fn codecs_subcommand_prints_container_table() {
        let cmd = parse(&argv("codecs")).expect("parse");
        assert_eq!(cmd, Command::Codecs);
        let mut out = Vec::new();
        run(cmd, &mut out).expect("codecs");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("registered codecs: sz, zfp"), "{text}");
        for magic in ["SZL1", "SZLP", "SZPR", "ZFL1", "ZFLP"] {
            assert!(text.contains(magic), "{text}");
        }
    }

    #[test]
    fn rel_and_pwrel_are_mutually_exclusive() {
        let field = tmp("relpwrel.lcpf");
        write_field(&field, &[1.0; 16], &[16]).expect("write");
        let cmd = parse(&argv(&format!(
            "compress --codec sz --eb 1e-2 --rel --pwrel -i {} -o /dev/null",
            field.display()
        )))
        .expect("parse");
        let mut out = Vec::new();
        assert!(matches!(run(cmd, &mut out), Err(CliError::Usage(_))));
    }

    #[test]
    fn zfp_rejects_relative_flags() {
        let field = tmp("zfprel.lcpf");
        write_field(&field, &[1.0; 16], &[16]).expect("write");
        let cmd = parse(&argv(&format!(
            "compress --codec zfp --eb 1e-2 --rel -i {} -o /dev/null",
            field.display()
        )))
        .expect("parse");
        let mut out = Vec::new();
        assert!(run(cmd, &mut out).is_err());
    }
}
