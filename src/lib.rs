#![warn(missing_docs)]
//! # lcpio — Lossy Compressed Power-aware I/O
//!
//! Umbrella crate for the reproduction of *"Modeling Power Consumption of
//! Lossy Compressed I/O for Exascale HPC Systems"* (Wilkins & Calhoun, 2022).
//!
//! This crate re-exports the workspace members under stable module names so
//! downstream users depend on a single crate:
//!
//! * [`codec`] — the unified codec abstraction: the object-safe
//!   [`Codec`](codec::Codec) trait and the static container registry that
//!   resolves backends by name and compressed streams by magic.
//! * [`sz`] — SZ-style error-bounded lossy compressor (prediction +
//!   quantization + Huffman + lossless backend).
//! * [`zfp`] — ZFP-style transform-coding lossy compressor (block
//!   floating-point + lifted transform + embedded coding).
//! * [`datagen`] — synthetic scientific data generators mirroring the
//!   SDRBench datasets used by the paper (CESM-ATM, HACC, NYX,
//!   Hurricane-ISABEL).
//! * [`powersim`] — CPU power/DVFS/energy simulator with RAPL-like counters
//!   and an NFS write-path model.
//! * [`fit`] — Levenberg–Marquardt non-linear least squares used to fit the
//!   paper's `P(f) = a·f^b + c` power models.
//! * [`core`] — the paper's contribution: the experiment pipeline, fitted
//!   model tables, frequency-tuning rules, and energy-savings analyses.
//! * [`serve`] — compression as a service: the `LCRQ`/`LCRS` framed
//!   request protocol (spec: `PROTOCOL.md`), the sharded daemon behind
//!   `lcpio-cli serve`, its blocking client, and the mixed-workload
//!   driver.
//!
//! ## Quickstart
//!
//! ```
//! use lcpio::prelude::*;
//!
//! // Generate a small synthetic NYX-like field and compress it through
//! // the codec registry — the stream's magic identifies the codec, so
//! // decoding never needs to know which backend produced it.
//! let field = lcpio::datagen::nyx::generate_scaled(16, 42);
//! let codec = registry().by_name("sz").unwrap();
//! let out = codec
//!     .compress(&field.data, field.dims().extents(), BoundSpec::Absolute(1e-3))
//!     .unwrap();
//! assert!(out.bytes.len() < field.data.len() * 4);
//! let (restored, _dims) = registry().decompress_auto(&out.bytes, 1).unwrap();
//! assert_eq!(restored.len(), field.data.len());
//! ```

pub mod cli;

pub use lcpio_codec as codec;
pub use lcpio_core as core;
pub use lcpio_datagen as datagen;
pub use lcpio_fit as fit;
pub use lcpio_powersim as powersim;
pub use lcpio_serve as serve;
pub use lcpio_sz as sz;
pub use lcpio_wire as wire;
pub use lcpio_zfp as zfp;

/// Convenience re-exports of the most commonly used types.
pub mod prelude {
    pub use lcpio_codec::{registry, BoundSpec, Codec, CodecStats, Encoded};
    pub use lcpio_core::experiment::{ExperimentConfig, SweepResult};
    pub use lcpio_core::tuning::TuningRule;
    pub use lcpio_datagen::{Dataset, Field};
    pub use lcpio_fit::{powerlaw::PowerLawFit, GoodnessOfFit};
    pub use lcpio_powersim::{Chip, CpuSpec, FrequencyLadder};
    pub use lcpio_sz::{ErrorBound, SzConfig};
    pub use lcpio_zfp::ZfpConfig;
}
