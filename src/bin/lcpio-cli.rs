//! The `lcpio-cli` binary: a thin shim over [`lcpio::cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let inv = match lcpio::cli::parse_invocation(&args) {
        Ok(inv) => inv,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("{}", lcpio::cli::usage());
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = lcpio::cli::run_invocation(inv, &mut stdout) {
        eprintln!("{e}");
        std::process::exit(1);
    }
}
