//! The `lcpio-cli` binary: a thin shim over [`lcpio::cli`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let inv = match lcpio::cli::parse_invocation(&args) {
        Ok(inv) => inv,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("{}", lcpio::cli::usage());
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = lcpio::cli::run_invocation(inv, &mut stdout) {
        eprintln!("{e}");
        // Same split as parse time: bad user input is 2, everything else
        // (codec/io failures) is 1.
        let code = if matches!(e, lcpio::cli::CliError::Usage(_)) { 2 } else { 1 };
        std::process::exit(code);
    }
}
